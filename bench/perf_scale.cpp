// perf_scale: survey-campaign scale benchmark — million-task DAG
// construction and simulation throughput, peak memory, shard-mode runner
// scaling, and a merge-path regression guard.  Writes BENCH_scale.json:
//
//   ./bench/perf_scale [--tiers 100000,1000000,10000000] [--jobs N]
//                      [--shards 16] [--procs 64] [--repeat 3]
//                      [--out BENCH_scale.json]
//
// Per tier (ascending task counts so the reported RSS is the cumulative
// peak up to and including that tier): streaming build wall time and
// tasks/sec through workflows::buildSurveyCampaign, then one engine run
// over the whole campaign.  After the tiers: a 16-shard campaign at the
// smallest tier through runner::runCampaign, serial (--jobs 0) vs the
// worker pool, asserting identical shard results; and a replicateWorkflow
// doubling probe (512 -> 1024 copies) whose wall-time ratio must stay
// near-linear — a reintroduced per-copy deep copy or reallocation cascade
// shows up as a superlinear ratio.
//
// Exit status reflects correctness only (identity checks, closed-form
// counts, the doubling ratio); throughput and speedup numbers are
// recorded as measured, never asserted — this box may have 1 core.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "mcsim/dag/merge.hpp"
#include "mcsim/runner/campaign.hpp"
#include "mcsim/workflows/survey.hpp"

namespace {

using namespace mcsim;
using Clock = std::chrono::steady_clock;

double argNumber(int argc, char** argv, const std::string& flag,
                 double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return std::stod(argv[i + 1]);
  return fallback;
}

std::string argText(int argc, char** argv, const std::string& flag,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == "--" + flag) return argv[i + 1];
  return fallback;
}

std::vector<std::uint64_t> parseTiers(const std::string& csv) {
  std::vector<std::uint64_t> tiers;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ','))
    if (!item.empty()) tiers.push_back(std::stoull(item));
  std::sort(tiers.begin(), tiers.end());
  return tiers;
}

double seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TierStats {
  std::uint64_t targetTasks = 0;
  std::uint64_t tiles = 0;
  std::uint64_t tasks = 0;
  std::uint64_t files = 0;
  double buildSeconds = 0.0;
  double buildTasksPerSec = 0.0;
  double simSeconds = 0.0;
  double simTasksPerSec = 0.0;
  double makespanSeconds = 0.0;
  std::size_t peakRssBytes = 0;  // cumulative process peak after this tier
};

bool sameShardResults(const std::vector<runner::ScenarioResult>& a,
                      const std::vector<runner::ScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const engine::ExecutionResult& x = a[i].result;
    const engine::ExecutionResult& y = b[i].result;
    if (a[i].index != b[i].index ||
        x.makespanSeconds != y.makespanSeconds ||
        x.cpuBusySeconds != y.cpuBusySeconds ||
        x.tasksExecuted != y.tasksExecuted ||
        x.bytesIn.value() != y.bytesIn.value() ||
        x.bytesOut.value() != y.bytesOut.value() ||
        x.storageByteSeconds != y.storageByteSeconds)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::uint64_t> tiers = parseTiers(
      argText(argc, argv, "tiers", "100000,1000000,10000000"));
  const int jobs = static_cast<int>(
      argNumber(argc, argv, "jobs", runner::defaultJobs()));
  const std::uint32_t shards = static_cast<std::uint32_t>(
      argNumber(argc, argv, "shards", 16.0));
  const int procs =
      static_cast<int>(argNumber(argc, argv, "procs", 64.0));
  const int repeat =
      std::max(1, static_cast<int>(argNumber(argc, argv, "repeat", 3.0)));
  const std::string outPath = argText(argc, argv, "out", "BENCH_scale.json");

  bool ok = true;

  // Tiles per tier from the closed-form tasks/tile at 1 degree.
  workflows::SurveyConfig probe;
  probe.tiles = 1;
  const std::uint64_t tasksPerTile = workflows::surveyCounts(probe).tasksPerTile;

  engine::EngineConfig engineConfig;
  engineConfig.processors = procs;

  // -- tier sweep: streaming build + one engine run per campaign ------------
  std::vector<TierStats> stats;
  for (std::uint64_t target : tiers) {
    TierStats tier;
    tier.targetTasks = target;
    tier.tiles = (target + tasksPerTile - 1) / tasksPerTile;

    workflows::SurveyConfig cfg;
    cfg.name = "scale-" + std::to_string(target);
    cfg.tiles = tier.tiles;
    cfg.seed = 1;

    const auto t0 = Clock::now();
    const dag::Workflow wf = workflows::buildSurveyCampaign(cfg);
    tier.buildSeconds = seconds(t0);
    tier.tasks = wf.taskCount();
    tier.files = wf.fileCount();
    tier.buildTasksPerSec =
        tier.buildSeconds > 0.0
            ? static_cast<double>(tier.tasks) / tier.buildSeconds
            : 0.0;

    const workflows::SurveyCounts counts = workflows::surveyCounts(cfg);
    if (tier.tasks != counts.tasks || tier.files != counts.files) {
      std::cerr << "perf_scale: tier " << target
                << ": built counts diverge from the closed form\n";
      ok = false;
    }

    const auto t1 = Clock::now();
    const engine::ExecutionResult result =
        engine::simulateWorkflow(wf, engineConfig);
    tier.simSeconds = seconds(t1);
    tier.simTasksPerSec =
        tier.simSeconds > 0.0
            ? static_cast<double>(result.tasksExecuted) / tier.simSeconds
            : 0.0;
    tier.makespanSeconds = result.makespanSeconds;
    if (result.tasksExecuted != tier.tasks) {
      std::cerr << "perf_scale: tier " << target << ": engine executed "
                << result.tasksExecuted << " of " << tier.tasks
                << " tasks\n";
      ok = false;
    }

    tier.peakRssBytes = bench::peakRssBytes();
    std::cout << "tier " << target << ": " << tier.tiles << " tiles, "
              << tier.tasks << " tasks; build " << tier.buildSeconds
              << " s (" << tier.buildTasksPerSec << " tasks/s), sim "
              << tier.simSeconds << " s (" << tier.simTasksPerSec
              << " tasks/s), peak RSS "
              << static_cast<double>(tier.peakRssBytes) / (1024.0 * 1024.0)
              << " MiB\n";
    stats.push_back(tier);
  }

  // -- shard-mode runner scaling at the smallest tier -----------------------
  const std::uint64_t shardTiles =
      std::max<std::uint64_t>(shards, stats.empty() ? shards
                                                    : stats.front().tiles);
  workflows::SurveyConfig shardCfg;
  shardCfg.name = "scale-shards";
  shardCfg.tiles = shardTiles;
  shardCfg.seed = 1;
  const std::vector<dag::Workflow> shardWorkflows =
      workflows::buildSurveyShards(shardCfg, shards);

  runner::CampaignOptions serialOptions;
  serialOptions.engine = engineConfig;
  serialOptions.jobs = 0;
  runner::CampaignOptions parallelOptions = serialOptions;
  parallelOptions.jobs = jobs;

  runner::CampaignResult serialCampaign, parallelCampaign;
  double serialBest = 0.0, parallelBest = 0.0;
  for (int r = 0; r < repeat; ++r) {
    auto t0 = Clock::now();
    serialCampaign = runner::runCampaign(shardWorkflows, serialOptions);
    const double serial = seconds(t0);
    t0 = Clock::now();
    parallelCampaign = runner::runCampaign(shardWorkflows, parallelOptions);
    const double parallel = seconds(t0);
    if (r == 0 || serial < serialBest) serialBest = serial;
    if (r == 0 || parallel < parallelBest) parallelBest = parallel;
  }
  const bool shardsIdentical = sameShardResults(
      serialCampaign.shardResults, parallelCampaign.shardResults);
  if (!shardsIdentical) {
    std::cerr << "perf_scale: serial and parallel shard results diverge\n";
    ok = false;
  }
  const double shardSpeedup =
      parallelBest > 0.0 ? serialBest / parallelBest : 0.0;
  std::cout << "shards: " << shards << " x "
            << (shardTiles / std::max<std::uint64_t>(1, shards))
            << "+ tiles; serial " << serialBest << " s, jobs=" << jobs << " "
            << parallelBest << " s, speedup " << shardSpeedup
            << "x, identical " << (shardsIdentical ? "yes" : "NO") << "\n";

  // -- merge-path regression guard ------------------------------------------
  // replicateWorkflow appends straight from the single source part; its
  // wall time must grow linearly in the copy count.  A doubling ratio
  // near 2 is linear; near 4 means someone reintroduced per-copy deep
  // copies or an unreserved reallocation cascade.
  const dag::Workflow tile = workflows::buildSurveyTile(shardCfg, 0);
  // Untimed warm-up: the first 1024-copy build grows the heap; without it
  // a single-repeat run conflates allocator growth with merge cost.
  { const dag::Workflow warm = dag::replicateWorkflow(tile, 1024); }
  double half = 0.0, full = 0.0;
  std::size_t fullTasks = 0;
  for (int r = 0; r < repeat; ++r) {
    auto t0 = Clock::now();
    const dag::Workflow a = dag::replicateWorkflow(tile, 512);
    const double tHalf = seconds(t0);
    t0 = Clock::now();
    const dag::Workflow b = dag::replicateWorkflow(tile, 1024);
    const double tFull = seconds(t0);
    if (r == 0 || tHalf < half) half = tHalf;
    if (r == 0 || tFull < full) full = tFull;
    fullTasks = b.taskCount();
  }
  const double doublingRatio = half > 0.0 ? full / half : 0.0;
  if (fullTasks != 1024 * tile.taskCount()) {
    std::cerr << "perf_scale: replicateWorkflow dropped tasks\n";
    ok = false;
  }
  if (doublingRatio > 3.0) {
    std::cerr << "perf_scale: replicateWorkflow doubling ratio "
              << doublingRatio << " is superlinear (expected ~2)\n";
    ok = false;
  }
  std::cout << "replicate: 512 copies " << half << " s, 1024 copies " << full
            << " s, doubling ratio " << doublingRatio << "\n";

  // -- BENCH_scale.json ------------------------------------------------------
  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "perf_scale: cannot write " << outPath << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"survey_scale\",\n"
      << "  \"tile_degrees\": 1,\n"
      << "  \"tasks_per_tile\": " << tasksPerTile << ",\n"
      << "  \"processors\": " << procs << ",\n"
      << "  \"repeats\": " << repeat << ",\n"
      << "  \"hardware_concurrency\": " << runner::defaultJobs() << ",\n"
      << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const TierStats& t = stats[i];
    out << "    {\n"
        << "      \"target_tasks\": " << t.targetTasks << ",\n"
        << "      \"tiles\": " << t.tiles << ",\n"
        << "      \"tasks\": " << t.tasks << ",\n"
        << "      \"files\": " << t.files << ",\n"
        << "      \"build_seconds\": " << t.buildSeconds << ",\n"
        << "      \"build_tasks_per_sec\": " << t.buildTasksPerSec << ",\n"
        << "      \"sim_seconds\": " << t.simSeconds << ",\n"
        << "      \"sim_tasks_per_sec\": " << t.simTasksPerSec << ",\n"
        << "      \"makespan_seconds\": " << t.makespanSeconds << ",\n"
        << "      \"peak_rss_bytes\": " << t.peakRssBytes << "\n"
        << "    }" << (i + 1 < stats.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"shard_mode\": {\n"
      << "    \"shards\": " << shards << ",\n"
      << "    \"tiles\": " << shardTiles << ",\n"
      << "    \"jobs\": " << jobs << ",\n"
      << "    \"serial_seconds\": " << serialBest << ",\n"
      << "    \"parallel_seconds\": " << parallelBest << ",\n"
      << "    \"speedup\": " << shardSpeedup << ",\n"
      << "    \"identical_results\": " << (shardsIdentical ? "true" : "false")
      << "\n"
      << "  },\n"
      << "  \"replicate_doubling\": {\n"
      << "    \"copies\": [512, 1024],\n"
      << "    \"seconds\": [" << half << ", " << full << "],\n"
      << "    \"ratio\": " << doublingRatio << "\n"
      << "  },\n"
      << "  \"correct\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::cout << (ok ? "OK" : "FAILED") << "; wrote " << outPath << "\n";
  return ok ? 0 : 1;
}
