// Reproduces Figure 6 plus §6.1's service arithmetic: the Montage 4-degree
// provisioning sweep and the cost of serving 500 mosaics at three
// provisioning levels.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  const bool csv = bench::wantCsv(argc, argv);
  const int jobs = bench::parseJobs(argc, argv);
  bench::printProvisioningFigure(
      "Fig 6", 4.0,
      {{1, "paper: ~$9 total, 85 h"},
       {16, "paper: $9.25, ~5.5 h"},
       {128, "paper: ~$14, ~1 h"}},
      csv, jobs);

  // "providing 500 4-degree square mosaics to astronomers would cost $4,500
  // using 1 processor versus $7,000 using 128 processors ... 16 processors
  // ... a total cost of 500 mosaics would be $4,625."
  const dag::Workflow wf = montage::buildMontageWorkflow(4.0);
  const auto points = analysis::provisioningSweep(
      wf, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
      {.processorCounts = {1, 16, 128},
       .queue = &bench::sharedQueue(jobs)});
  std::cout << sectionBanner(
      "Q1 service — 500 four-degree mosaics at fixed provisioning");
  Table t({"procs", "per-mosaic", "turnaround", "500 mosaics",
           "paper anchor"});
  const char* anchors[] = {"paper: $4,500", "paper: $4,625", "paper: $7,000"};
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    t.addRow({std::to_string(p.processors),
              analysis::moneyCell(p.totalCost),
              formatDuration(p.makespanSeconds),
              formatMoney(p.totalCost * 500.0), anchors[i]});
  }
  t.print(std::cout);
  return 0;
}
