// Reproduces Figure 7: storage space-time, transfer volumes and costs of
// the Montage 1-degree workflow under the three data-management modes.
#include "common.hpp"

int main(int argc, char** argv) {
  mcsim::bench::printDataModeFigure("Fig 7", 1.0,
                                    mcsim::bench::wantCsv(argc, argv),
                                    mcsim::bench::parseJobs(argc, argv));
  return 0;
}
