// Ablation A2: VM startup/teardown overhead (paper §8: "the startup cost of
// the application on the cloud, which is composed of launching and
// configuring a virtual machine and its teardown ... an additional constant
// cost").  2008-era EC2 instance boot took on the order of minutes.
#include "common.hpp"

int main(int, char**) {
  using namespace mcsim;
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);

  std::cout << sectionBanner(
      "A2 — VM provisioning overhead: total cost and makespan vs startup+"
      "teardown time, Montage 1 degree (provisioned billing pays the "
      "overhead on every processor)");
  Table t({"procs", "overhead", "makespan", "total cost", "vs zero-overhead"});
  for (int procs : {1, 16, 128}) {
    Money base;
    for (double overheadMin : {0.0, 2.0, 5.0, 15.0}) {
      engine::EngineConfig cfg;
      cfg.vmStartupSeconds = overheadMin * 60.0 / 2.0;
      cfg.vmTeardownSeconds = overheadMin * 60.0 / 2.0;
      const auto pts = analysis::provisioningSweep(
          wf, amazon, {.processorCounts = {procs}, .base = cfg});
      if (overheadMin == 0.0) base = pts[0].totalCost;
      char delta[32];
      std::snprintf(delta, sizeof delta, "+%.1f%%",
                    100.0 * (pts[0].totalCost - base).value() / base.value());
      t.addRow({std::to_string(procs),
                overheadMin == 0.0 ? "none"
                                   : formatDuration(overheadMin * 60.0),
                formatDuration(pts[0].makespanSeconds),
                analysis::moneyCell(pts[0].totalCost), delta});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe overhead is negligible for long serial runs but "
               "dominates wide provisioning: at 128 processors a 15-minute "
               "boot+teardown nearly doubles the bill.\n";
  return 0;
}
