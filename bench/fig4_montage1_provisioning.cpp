// Reproduces Figure 4: execution costs and execution time of the Montage
// 1-degree workflow as provisioned processors sweep 1..128.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;
  bench::printProvisioningFigure(
      "Fig 4", 1.0,
      {{1, "paper: ~$0.60 total, 5.5 h"},
       {128, "paper: almost $4, 18 min"}},
      bench::wantCsv(argc, argv), bench::parseJobs(argc, argv));
  return 0;
}
