file(REMOVE_RECURSE
  "CMakeFiles/provisioning_advisor.dir/provisioning_advisor.cpp.o"
  "CMakeFiles/provisioning_advisor.dir/provisioning_advisor.cpp.o.d"
  "provisioning_advisor"
  "provisioning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
