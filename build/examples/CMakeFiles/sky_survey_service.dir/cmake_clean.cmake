file(REMOVE_RECURSE
  "CMakeFiles/sky_survey_service.dir/sky_survey_service.cpp.o"
  "CMakeFiles/sky_survey_service.dir/sky_survey_service.cpp.o.d"
  "sky_survey_service"
  "sky_survey_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sky_survey_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
