# Empty compiler generated dependencies file for sky_survey_service.
# This may be replaced when dependencies are built.
