file(REMOVE_RECURSE
  "CMakeFiles/custom_workflow_dax.dir/custom_workflow_dax.cpp.o"
  "CMakeFiles/custom_workflow_dax.dir/custom_workflow_dax.cpp.o.d"
  "custom_workflow_dax"
  "custom_workflow_dax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_workflow_dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
