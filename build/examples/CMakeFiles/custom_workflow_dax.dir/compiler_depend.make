# Empty compiler generated dependencies file for custom_workflow_dax.
# This may be replaced when dependencies are built.
