file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud_broker.dir/multi_cloud_broker.cpp.o"
  "CMakeFiles/multi_cloud_broker.dir/multi_cloud_broker.cpp.o.d"
  "multi_cloud_broker"
  "multi_cloud_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
