# Empty compiler generated dependencies file for multi_cloud_broker.
# This may be replaced when dependencies are built.
