
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcsim/analysis/economics.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/economics.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/economics.cpp.o.d"
  "/root/repo/src/mcsim/analysis/experiments.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/experiments.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/experiments.cpp.o.d"
  "/root/repo/src/mcsim/analysis/model.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/model.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/model.cpp.o.d"
  "/root/repo/src/mcsim/analysis/placement.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/placement.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/placement.cpp.o.d"
  "/root/repo/src/mcsim/analysis/planner.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/planner.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/planner.cpp.o.d"
  "/root/repo/src/mcsim/analysis/report.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/report.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/report.cpp.o.d"
  "/root/repo/src/mcsim/analysis/service.cpp" "src/CMakeFiles/mcsim.dir/mcsim/analysis/service.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/analysis/service.cpp.o.d"
  "/root/repo/src/mcsim/cloud/billing.cpp" "src/CMakeFiles/mcsim.dir/mcsim/cloud/billing.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/cloud/billing.cpp.o.d"
  "/root/repo/src/mcsim/cloud/pricing.cpp" "src/CMakeFiles/mcsim.dir/mcsim/cloud/pricing.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/cloud/pricing.cpp.o.d"
  "/root/repo/src/mcsim/cloud/storage.cpp" "src/CMakeFiles/mcsim.dir/mcsim/cloud/storage.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/cloud/storage.cpp.o.d"
  "/root/repo/src/mcsim/dag/algorithms.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/algorithms.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/algorithms.cpp.o.d"
  "/root/repo/src/mcsim/dag/cleanup.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/cleanup.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/cleanup.cpp.o.d"
  "/root/repo/src/mcsim/dag/dax.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/dax.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/dax.cpp.o.d"
  "/root/repo/src/mcsim/dag/merge.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/merge.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/merge.cpp.o.d"
  "/root/repo/src/mcsim/dag/random_dag.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/random_dag.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/random_dag.cpp.o.d"
  "/root/repo/src/mcsim/dag/stats.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/stats.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/stats.cpp.o.d"
  "/root/repo/src/mcsim/dag/workflow.cpp" "src/CMakeFiles/mcsim.dir/mcsim/dag/workflow.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/dag/workflow.cpp.o.d"
  "/root/repo/src/mcsim/engine/engine.cpp" "src/CMakeFiles/mcsim.dir/mcsim/engine/engine.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/engine/engine.cpp.o.d"
  "/root/repo/src/mcsim/engine/metrics.cpp" "src/CMakeFiles/mcsim.dir/mcsim/engine/metrics.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/engine/metrics.cpp.o.d"
  "/root/repo/src/mcsim/engine/trace.cpp" "src/CMakeFiles/mcsim.dir/mcsim/engine/trace.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/engine/trace.cpp.o.d"
  "/root/repo/src/mcsim/engine/trace_export.cpp" "src/CMakeFiles/mcsim.dir/mcsim/engine/trace_export.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/engine/trace_export.cpp.o.d"
  "/root/repo/src/mcsim/montage/catalog.cpp" "src/CMakeFiles/mcsim.dir/mcsim/montage/catalog.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/montage/catalog.cpp.o.d"
  "/root/repo/src/mcsim/montage/ccr.cpp" "src/CMakeFiles/mcsim.dir/mcsim/montage/ccr.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/montage/ccr.cpp.o.d"
  "/root/repo/src/mcsim/montage/factory.cpp" "src/CMakeFiles/mcsim.dir/mcsim/montage/factory.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/montage/factory.cpp.o.d"
  "/root/repo/src/mcsim/sim/link.cpp" "src/CMakeFiles/mcsim.dir/mcsim/sim/link.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/sim/link.cpp.o.d"
  "/root/repo/src/mcsim/sim/processor_pool.cpp" "src/CMakeFiles/mcsim.dir/mcsim/sim/processor_pool.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/sim/processor_pool.cpp.o.d"
  "/root/repo/src/mcsim/sim/simulator.cpp" "src/CMakeFiles/mcsim.dir/mcsim/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/sim/simulator.cpp.o.d"
  "/root/repo/src/mcsim/util/args.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/args.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/args.cpp.o.d"
  "/root/repo/src/mcsim/util/csv.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/csv.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/csv.cpp.o.d"
  "/root/repo/src/mcsim/util/log.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/log.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/log.cpp.o.d"
  "/root/repo/src/mcsim/util/table.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/table.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/table.cpp.o.d"
  "/root/repo/src/mcsim/util/units.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/units.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/units.cpp.o.d"
  "/root/repo/src/mcsim/util/usage_curve.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/usage_curve.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/usage_curve.cpp.o.d"
  "/root/repo/src/mcsim/util/xml.cpp" "src/CMakeFiles/mcsim.dir/mcsim/util/xml.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/util/xml.cpp.o.d"
  "/root/repo/src/mcsim/workflows/cybershake.cpp" "src/CMakeFiles/mcsim.dir/mcsim/workflows/cybershake.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/workflows/cybershake.cpp.o.d"
  "/root/repo/src/mcsim/workflows/epigenomics.cpp" "src/CMakeFiles/mcsim.dir/mcsim/workflows/epigenomics.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/workflows/epigenomics.cpp.o.d"
  "/root/repo/src/mcsim/workflows/inspiral.cpp" "src/CMakeFiles/mcsim.dir/mcsim/workflows/inspiral.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/workflows/inspiral.cpp.o.d"
  "/root/repo/src/mcsim/workflows/sipht.cpp" "src/CMakeFiles/mcsim.dir/mcsim/workflows/sipht.cpp.o" "gcc" "src/CMakeFiles/mcsim.dir/mcsim/workflows/sipht.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
