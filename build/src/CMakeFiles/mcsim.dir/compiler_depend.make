# Empty compiler generated dependencies file for mcsim.
# This may be replaced when dependencies are built.
