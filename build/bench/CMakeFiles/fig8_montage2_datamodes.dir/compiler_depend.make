# Empty compiler generated dependencies file for fig8_montage2_datamodes.
# This may be replaced when dependencies are built.
