file(REMOVE_RECURSE
  "CMakeFiles/fig8_montage2_datamodes.dir/fig8_montage2_datamodes.cpp.o"
  "CMakeFiles/fig8_montage2_datamodes.dir/fig8_montage2_datamodes.cpp.o.d"
  "fig8_montage2_datamodes"
  "fig8_montage2_datamodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_montage2_datamodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
