# Empty compiler generated dependencies file for fig5_montage2_provisioning.
# This may be replaced when dependencies are built.
