file(REMOVE_RECURSE
  "CMakeFiles/fig5_montage2_provisioning.dir/fig5_montage2_provisioning.cpp.o"
  "CMakeFiles/fig5_montage2_provisioning.dir/fig5_montage2_provisioning.cpp.o.d"
  "fig5_montage2_provisioning"
  "fig5_montage2_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_montage2_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
