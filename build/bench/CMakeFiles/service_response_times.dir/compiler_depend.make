# Empty compiler generated dependencies file for service_response_times.
# This may be replaced when dependencies are built.
