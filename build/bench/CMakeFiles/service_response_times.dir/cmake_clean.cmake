file(REMOVE_RECURSE
  "CMakeFiles/service_response_times.dir/service_response_times.cpp.o"
  "CMakeFiles/service_response_times.dir/service_response_times.cpp.o.d"
  "service_response_times"
  "service_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
