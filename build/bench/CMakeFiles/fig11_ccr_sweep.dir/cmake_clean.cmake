file(REMOVE_RECURSE
  "CMakeFiles/fig11_ccr_sweep.dir/fig11_ccr_sweep.cpp.o"
  "CMakeFiles/fig11_ccr_sweep.dir/fig11_ccr_sweep.cpp.o.d"
  "fig11_ccr_sweep"
  "fig11_ccr_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ccr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
