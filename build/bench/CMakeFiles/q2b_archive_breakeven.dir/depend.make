# Empty dependencies file for q2b_archive_breakeven.
# This may be replaced when dependencies are built.
