file(REMOVE_RECURSE
  "CMakeFiles/q2b_archive_breakeven.dir/q2b_archive_breakeven.cpp.o"
  "CMakeFiles/q2b_archive_breakeven.dir/q2b_archive_breakeven.cpp.o.d"
  "q2b_archive_breakeven"
  "q2b_archive_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q2b_archive_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
