# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for q2b_archive_breakeven.
