# Empty compiler generated dependencies file for ablation_storage_capacity.
# This may be replaced when dependencies are built.
