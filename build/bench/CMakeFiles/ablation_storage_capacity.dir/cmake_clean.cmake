file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_capacity.dir/ablation_storage_capacity.cpp.o"
  "CMakeFiles/ablation_storage_capacity.dir/ablation_storage_capacity.cpp.o.d"
  "ablation_storage_capacity"
  "ablation_storage_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
