file(REMOVE_RECURSE
  "CMakeFiles/beyond_montage.dir/beyond_montage.cpp.o"
  "CMakeFiles/beyond_montage.dir/beyond_montage.cpp.o.d"
  "beyond_montage"
  "beyond_montage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_montage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
