# Empty compiler generated dependencies file for beyond_montage.
# This may be replaced when dependencies are built.
