file(REMOVE_RECURSE
  "CMakeFiles/ablation_fee_structures.dir/ablation_fee_structures.cpp.o"
  "CMakeFiles/ablation_fee_structures.dir/ablation_fee_structures.cpp.o.d"
  "ablation_fee_structures"
  "ablation_fee_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fee_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
