# Empty compiler generated dependencies file for ablation_fee_structures.
# This may be replaced when dependencies are built.
