# Empty dependencies file for fig7_storage_timeline.
# This may be replaced when dependencies are built.
