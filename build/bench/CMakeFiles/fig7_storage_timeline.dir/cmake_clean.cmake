file(REMOVE_RECURSE
  "CMakeFiles/fig7_storage_timeline.dir/fig7_storage_timeline.cpp.o"
  "CMakeFiles/fig7_storage_timeline.dir/fig7_storage_timeline.cpp.o.d"
  "fig7_storage_timeline"
  "fig7_storage_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_storage_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
