file(REMOVE_RECURSE
  "CMakeFiles/ablation_vm_startup.dir/ablation_vm_startup.cpp.o"
  "CMakeFiles/ablation_vm_startup.dir/ablation_vm_startup.cpp.o.d"
  "ablation_vm_startup"
  "ablation_vm_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vm_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
