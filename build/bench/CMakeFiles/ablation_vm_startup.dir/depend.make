# Empty dependencies file for ablation_vm_startup.
# This may be replaced when dependencies are built.
