file(REMOVE_RECURSE
  "CMakeFiles/ablation_billing_granularity.dir/ablation_billing_granularity.cpp.o"
  "CMakeFiles/ablation_billing_granularity.dir/ablation_billing_granularity.cpp.o.d"
  "ablation_billing_granularity"
  "ablation_billing_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_billing_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
