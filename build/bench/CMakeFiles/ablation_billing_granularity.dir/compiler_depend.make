# Empty compiler generated dependencies file for ablation_billing_granularity.
# This may be replaced when dependencies are built.
