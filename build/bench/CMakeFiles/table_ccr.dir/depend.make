# Empty dependencies file for table_ccr.
# This may be replaced when dependencies are built.
