file(REMOVE_RECURSE
  "CMakeFiles/table_ccr.dir/table_ccr.cpp.o"
  "CMakeFiles/table_ccr.dir/table_ccr.cpp.o.d"
  "table_ccr"
  "table_ccr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
