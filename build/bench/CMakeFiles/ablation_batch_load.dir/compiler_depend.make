# Empty compiler generated dependencies file for ablation_batch_load.
# This may be replaced when dependencies are built.
