file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_load.dir/ablation_batch_load.cpp.o"
  "CMakeFiles/ablation_batch_load.dir/ablation_batch_load.cpp.o.d"
  "ablation_batch_load"
  "ablation_batch_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
