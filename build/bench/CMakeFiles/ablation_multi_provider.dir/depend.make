# Empty dependencies file for ablation_multi_provider.
# This may be replaced when dependencies are built.
