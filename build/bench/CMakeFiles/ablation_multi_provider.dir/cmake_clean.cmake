file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_provider.dir/ablation_multi_provider.cpp.o"
  "CMakeFiles/ablation_multi_provider.dir/ablation_multi_provider.cpp.o.d"
  "ablation_multi_provider"
  "ablation_multi_provider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
