file(REMOVE_RECURSE
  "CMakeFiles/mcsim_bench_common.dir/common.cpp.o"
  "CMakeFiles/mcsim_bench_common.dir/common.cpp.o.d"
  "libmcsim_bench_common.a"
  "libmcsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
