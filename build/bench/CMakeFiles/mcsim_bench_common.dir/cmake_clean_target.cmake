file(REMOVE_RECURSE
  "libmcsim_bench_common.a"
)
