# Empty compiler generated dependencies file for fig9_montage4_datamodes.
# This may be replaced when dependencies are built.
