file(REMOVE_RECURSE
  "CMakeFiles/fig9_montage4_datamodes.dir/fig9_montage4_datamodes.cpp.o"
  "CMakeFiles/fig9_montage4_datamodes.dir/fig9_montage4_datamodes.cpp.o.d"
  "fig9_montage4_datamodes"
  "fig9_montage4_datamodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_montage4_datamodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
