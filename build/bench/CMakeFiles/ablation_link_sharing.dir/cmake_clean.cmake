file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_sharing.dir/ablation_link_sharing.cpp.o"
  "CMakeFiles/ablation_link_sharing.dir/ablation_link_sharing.cpp.o.d"
  "ablation_link_sharing"
  "ablation_link_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
