# Empty compiler generated dependencies file for ablation_link_sharing.
# This may be replaced when dependencies are built.
