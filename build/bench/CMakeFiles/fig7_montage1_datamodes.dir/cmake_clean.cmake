file(REMOVE_RECURSE
  "CMakeFiles/fig7_montage1_datamodes.dir/fig7_montage1_datamodes.cpp.o"
  "CMakeFiles/fig7_montage1_datamodes.dir/fig7_montage1_datamodes.cpp.o.d"
  "fig7_montage1_datamodes"
  "fig7_montage1_datamodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_montage1_datamodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
