# Empty dependencies file for fig7_montage1_datamodes.
# This may be replaced when dependencies are built.
