# Empty dependencies file for ablation_outages.
# This may be replaced when dependencies are built.
