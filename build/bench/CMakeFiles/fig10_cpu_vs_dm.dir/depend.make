# Empty dependencies file for fig10_cpu_vs_dm.
# This may be replaced when dependencies are built.
