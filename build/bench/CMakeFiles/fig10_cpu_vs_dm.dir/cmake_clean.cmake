file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_vs_dm.dir/fig10_cpu_vs_dm.cpp.o"
  "CMakeFiles/fig10_cpu_vs_dm.dir/fig10_cpu_vs_dm.cpp.o.d"
  "fig10_cpu_vs_dm"
  "fig10_cpu_vs_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_vs_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
