file(REMOVE_RECURSE
  "CMakeFiles/fig4_montage1_provisioning.dir/fig4_montage1_provisioning.cpp.o"
  "CMakeFiles/fig4_montage1_provisioning.dir/fig4_montage1_provisioning.cpp.o.d"
  "fig4_montage1_provisioning"
  "fig4_montage1_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_montage1_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
