# Empty compiler generated dependencies file for fig4_montage1_provisioning.
# This may be replaced when dependencies are built.
