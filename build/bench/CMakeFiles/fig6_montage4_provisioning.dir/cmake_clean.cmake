file(REMOVE_RECURSE
  "CMakeFiles/fig6_montage4_provisioning.dir/fig6_montage4_provisioning.cpp.o"
  "CMakeFiles/fig6_montage4_provisioning.dir/fig6_montage4_provisioning.cpp.o.d"
  "fig6_montage4_provisioning"
  "fig6_montage4_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_montage4_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
