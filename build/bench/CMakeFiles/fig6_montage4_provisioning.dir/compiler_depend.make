# Empty compiler generated dependencies file for fig6_montage4_provisioning.
# This may be replaced when dependencies are built.
