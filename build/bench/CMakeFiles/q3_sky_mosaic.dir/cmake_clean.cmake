file(REMOVE_RECURSE
  "CMakeFiles/q3_sky_mosaic.dir/q3_sky_mosaic.cpp.o"
  "CMakeFiles/q3_sky_mosaic.dir/q3_sky_mosaic.cpp.o.d"
  "q3_sky_mosaic"
  "q3_sky_mosaic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q3_sky_mosaic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
