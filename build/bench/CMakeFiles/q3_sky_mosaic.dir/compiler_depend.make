# Empty compiler generated dependencies file for q3_sky_mosaic.
# This may be replaced when dependencies are built.
