file(REMOVE_RECURSE
  "CMakeFiles/ablation_task_failures.dir/ablation_task_failures.cpp.o"
  "CMakeFiles/ablation_task_failures.dir/ablation_task_failures.cpp.o.d"
  "ablation_task_failures"
  "ablation_task_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_task_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
