# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mcsim_util_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_dag_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_montage_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_cloud_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_engine_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_workflows_tests[1]_include.cmake")
include("/root/repo/build/tests/mcsim_integration_tests[1]_include.cmake")
