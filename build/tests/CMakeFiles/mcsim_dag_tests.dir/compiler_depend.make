# Empty compiler generated dependencies file for mcsim_dag_tests.
# This may be replaced when dependencies are built.
