file(REMOVE_RECURSE
  "CMakeFiles/mcsim_dag_tests.dir/dag/algorithms_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/algorithms_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/cleanup_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/cleanup_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/dax_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/dax_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/merge_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/merge_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/random_dag_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/random_dag_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/stats_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/stats_test.cpp.o.d"
  "CMakeFiles/mcsim_dag_tests.dir/dag/workflow_test.cpp.o"
  "CMakeFiles/mcsim_dag_tests.dir/dag/workflow_test.cpp.o.d"
  "mcsim_dag_tests"
  "mcsim_dag_tests.pdb"
  "mcsim_dag_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_dag_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
