
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dag/algorithms_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/algorithms_test.cpp.o.d"
  "/root/repo/tests/dag/cleanup_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/cleanup_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/cleanup_test.cpp.o.d"
  "/root/repo/tests/dag/dax_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/dax_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/dax_test.cpp.o.d"
  "/root/repo/tests/dag/merge_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/merge_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/merge_test.cpp.o.d"
  "/root/repo/tests/dag/random_dag_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/random_dag_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/random_dag_test.cpp.o.d"
  "/root/repo/tests/dag/stats_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/stats_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/stats_test.cpp.o.d"
  "/root/repo/tests/dag/workflow_test.cpp" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_dag_tests.dir/dag/workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
