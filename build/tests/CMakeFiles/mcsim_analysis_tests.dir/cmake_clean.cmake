file(REMOVE_RECURSE
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/economics_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/economics_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/experiments_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/experiments_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/model_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/model_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/placement_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/placement_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/planner_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/planner_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/report_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/service_test.cpp.o"
  "CMakeFiles/mcsim_analysis_tests.dir/analysis/service_test.cpp.o.d"
  "mcsim_analysis_tests"
  "mcsim_analysis_tests.pdb"
  "mcsim_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
