
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/economics_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/economics_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/economics_test.cpp.o.d"
  "/root/repo/tests/analysis/experiments_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/experiments_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/experiments_test.cpp.o.d"
  "/root/repo/tests/analysis/model_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/model_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/model_test.cpp.o.d"
  "/root/repo/tests/analysis/placement_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/placement_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/placement_test.cpp.o.d"
  "/root/repo/tests/analysis/planner_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/planner_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/planner_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/report_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/report_test.cpp.o.d"
  "/root/repo/tests/analysis/service_test.cpp" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/service_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_analysis_tests.dir/analysis/service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
