# Empty dependencies file for mcsim_analysis_tests.
# This may be replaced when dependencies are built.
