
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/engine_arrivals_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_arrivals_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_arrivals_test.cpp.o.d"
  "/root/repo/tests/engine/engine_basic_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_basic_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_basic_test.cpp.o.d"
  "/root/repo/tests/engine/engine_config_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_config_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_config_test.cpp.o.d"
  "/root/repo/tests/engine/engine_constraints_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_constraints_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_constraints_test.cpp.o.d"
  "/root/repo/tests/engine/engine_curve_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_curve_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_curve_test.cpp.o.d"
  "/root/repo/tests/engine/engine_feature_property_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_feature_property_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_feature_property_test.cpp.o.d"
  "/root/repo/tests/engine/engine_modes_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_modes_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_modes_test.cpp.o.d"
  "/root/repo/tests/engine/engine_property_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_property_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/engine_property_test.cpp.o.d"
  "/root/repo/tests/engine/trace_export_test.cpp" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/trace_export_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_engine_tests.dir/engine/trace_export_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
