file(REMOVE_RECURSE
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_arrivals_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_arrivals_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_basic_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_basic_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_config_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_config_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_constraints_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_constraints_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_curve_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_curve_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_feature_property_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_feature_property_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_modes_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_modes_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_property_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/engine_property_test.cpp.o.d"
  "CMakeFiles/mcsim_engine_tests.dir/engine/trace_export_test.cpp.o"
  "CMakeFiles/mcsim_engine_tests.dir/engine/trace_export_test.cpp.o.d"
  "mcsim_engine_tests"
  "mcsim_engine_tests.pdb"
  "mcsim_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
