# Empty dependencies file for mcsim_engine_tests.
# This may be replaced when dependencies are built.
