# Empty compiler generated dependencies file for mcsim_montage_tests.
# This may be replaced when dependencies are built.
