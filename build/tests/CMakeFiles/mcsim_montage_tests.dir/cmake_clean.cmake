file(REMOVE_RECURSE
  "CMakeFiles/mcsim_montage_tests.dir/montage/catalog_test.cpp.o"
  "CMakeFiles/mcsim_montage_tests.dir/montage/catalog_test.cpp.o.d"
  "CMakeFiles/mcsim_montage_tests.dir/montage/ccr_test.cpp.o"
  "CMakeFiles/mcsim_montage_tests.dir/montage/ccr_test.cpp.o.d"
  "CMakeFiles/mcsim_montage_tests.dir/montage/factory_test.cpp.o"
  "CMakeFiles/mcsim_montage_tests.dir/montage/factory_test.cpp.o.d"
  "mcsim_montage_tests"
  "mcsim_montage_tests.pdb"
  "mcsim_montage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_montage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
