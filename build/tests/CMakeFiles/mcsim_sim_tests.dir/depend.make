# Empty dependencies file for mcsim_sim_tests.
# This may be replaced when dependencies are built.
