file(REMOVE_RECURSE
  "CMakeFiles/mcsim_sim_tests.dir/sim/link_test.cpp.o"
  "CMakeFiles/mcsim_sim_tests.dir/sim/link_test.cpp.o.d"
  "CMakeFiles/mcsim_sim_tests.dir/sim/processor_pool_test.cpp.o"
  "CMakeFiles/mcsim_sim_tests.dir/sim/processor_pool_test.cpp.o.d"
  "CMakeFiles/mcsim_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/mcsim_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "mcsim_sim_tests"
  "mcsim_sim_tests.pdb"
  "mcsim_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
