# Empty dependencies file for mcsim_workflows_tests.
# This may be replaced when dependencies are built.
