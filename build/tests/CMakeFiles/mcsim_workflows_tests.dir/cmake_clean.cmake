file(REMOVE_RECURSE
  "CMakeFiles/mcsim_workflows_tests.dir/workflows/gallery_scaling_test.cpp.o"
  "CMakeFiles/mcsim_workflows_tests.dir/workflows/gallery_scaling_test.cpp.o.d"
  "CMakeFiles/mcsim_workflows_tests.dir/workflows/gallery_test.cpp.o"
  "CMakeFiles/mcsim_workflows_tests.dir/workflows/gallery_test.cpp.o.d"
  "mcsim_workflows_tests"
  "mcsim_workflows_tests.pdb"
  "mcsim_workflows_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_workflows_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
