file(REMOVE_RECURSE
  "CMakeFiles/mcsim_util_tests.dir/util/args_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/args_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/csv_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/log_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/log_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/table_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/units_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/units_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/usage_curve_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/usage_curve_test.cpp.o.d"
  "CMakeFiles/mcsim_util_tests.dir/util/xml_test.cpp.o"
  "CMakeFiles/mcsim_util_tests.dir/util/xml_test.cpp.o.d"
  "mcsim_util_tests"
  "mcsim_util_tests.pdb"
  "mcsim_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
