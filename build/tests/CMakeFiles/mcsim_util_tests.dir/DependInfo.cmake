
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/units_test.cpp.o.d"
  "/root/repo/tests/util/usage_curve_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/usage_curve_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/usage_curve_test.cpp.o.d"
  "/root/repo/tests/util/xml_test.cpp" "tests/CMakeFiles/mcsim_util_tests.dir/util/xml_test.cpp.o" "gcc" "tests/CMakeFiles/mcsim_util_tests.dir/util/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
