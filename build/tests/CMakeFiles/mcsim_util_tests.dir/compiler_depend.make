# Empty compiler generated dependencies file for mcsim_util_tests.
# This may be replaced when dependencies are built.
