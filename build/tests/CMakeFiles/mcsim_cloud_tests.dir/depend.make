# Empty dependencies file for mcsim_cloud_tests.
# This may be replaced when dependencies are built.
