file(REMOVE_RECURSE
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/billing_test.cpp.o"
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/billing_test.cpp.o.d"
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/pricing_test.cpp.o"
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/pricing_test.cpp.o.d"
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/storage_test.cpp.o"
  "CMakeFiles/mcsim_cloud_tests.dir/cloud/storage_test.cpp.o.d"
  "mcsim_cloud_tests"
  "mcsim_cloud_tests.pdb"
  "mcsim_cloud_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_cloud_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
