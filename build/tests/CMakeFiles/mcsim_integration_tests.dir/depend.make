# Empty dependencies file for mcsim_integration_tests.
# This may be replaced when dependencies are built.
