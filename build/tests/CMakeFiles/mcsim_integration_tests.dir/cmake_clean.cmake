file(REMOVE_RECURSE
  "CMakeFiles/mcsim_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/mcsim_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/mcsim_integration_tests.dir/integration/paper_anchors_test.cpp.o"
  "CMakeFiles/mcsim_integration_tests.dir/integration/paper_anchors_test.cpp.o.d"
  "mcsim_integration_tests"
  "mcsim_integration_tests.pdb"
  "mcsim_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsim_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
