# Empty compiler generated dependencies file for mcsim_cli.
# This may be replaced when dependencies are built.
