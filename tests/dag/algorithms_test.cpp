#include "mcsim/dag/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "tests/common/fixtures.hpp"

namespace mcsim::dag {
namespace {

using test::makeChainWorkflow;
using test::makeFigure3Workflow;
using test::makeForkJoinWorkflow;

bool isTopological(const Workflow& wf, const std::vector<TaskId>& order) {
  std::unordered_set<TaskId> seen;
  for (TaskId id : order) {
    for (TaskId p : wf.task(id).parents)
      if (!seen.count(p)) return false;
    seen.insert(id);
  }
  return seen.size() == wf.taskCount();
}

TEST(Algorithms, TopologicalOrderOnFigure3) {
  const auto fig = makeFigure3Workflow();
  const auto order = topologicalOrder(fig.wf);
  ASSERT_EQ(order.size(), 7u);
  EXPECT_TRUE(isTopological(fig.wf, order));
  EXPECT_EQ(order.front(), fig.t0);
  EXPECT_EQ(order.back(), fig.t6);
}

TEST(Algorithms, TopologicalOrderDeterministicMinIdFirst) {
  const auto fig = makeFigure3Workflow();
  const auto order = topologicalOrder(fig.wf);
  // With min-id tie-breaking the order is fully determined:
  // t0, then t1 before t2, then t3/t4/t5 in id order, then t6.
  EXPECT_EQ(order, (std::vector<TaskId>{fig.t0, fig.t1, fig.t2, fig.t3,
                                        fig.t4, fig.t5, fig.t6}));
}

TEST(Algorithms, CriticalPathOfChainIsTotal) {
  const auto wf = makeChainWorkflow(8, 5.0);
  EXPECT_DOUBLE_EQ(criticalPathSeconds(wf), 40.0);
  const auto path = criticalPathTasks(wf);
  EXPECT_EQ(path.size(), 8u);
}

TEST(Algorithms, CriticalPathOfForkJoin) {
  const auto wf = makeForkJoinWorkflow(10, 7.0);
  // split + one worker + join.
  EXPECT_DOUBLE_EQ(criticalPathSeconds(wf), 21.0);
}

TEST(Algorithms, CriticalPathOfFigure3) {
  const auto fig = makeFigure3Workflow();
  // Longest chain: t0 -> t1/t2 -> stage2 -> t6 = 4 tasks x 10 s.
  EXPECT_DOUBLE_EQ(criticalPathSeconds(fig.wf), 40.0);
  const auto path = criticalPathTasks(fig.wf);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), fig.t0);
  EXPECT_EQ(path.back(), fig.t6);
}

TEST(Algorithms, CriticalPathWithUnevenRuntimes) {
  Workflow wf("uneven");
  const FileId in = wf.addFile("in", Bytes(1.0));
  const TaskId slow = wf.addTask("slow", "t", 100.0);
  const TaskId fast = wf.addTask("fast", "t", 1.0);
  wf.addInput(slow, in);
  wf.addInput(fast, in);
  const FileId so = wf.addFile("so", Bytes(1.0));
  const FileId fo = wf.addFile("fo", Bytes(1.0));
  wf.addOutput(slow, so);
  wf.addOutput(fast, fo);
  const TaskId sink = wf.addTask("sink", "t", 2.0);
  wf.addInput(sink, so);
  wf.addInput(sink, fo);
  const FileId out = wf.addFile("out", Bytes(1.0));
  wf.addOutput(sink, out);
  wf.finalize();
  EXPECT_DOUBLE_EQ(criticalPathSeconds(wf), 102.0);
  const auto path = criticalPathTasks(wf);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], slow);
  EXPECT_EQ(path[1], sink);
}

TEST(Algorithms, EarliestStartTimes) {
  const auto fig = makeFigure3Workflow();
  const auto est = earliestStartTimes(fig.wf);
  EXPECT_DOUBLE_EQ(est[fig.t0], 0.0);
  EXPECT_DOUBLE_EQ(est[fig.t1], 10.0);
  EXPECT_DOUBLE_EQ(est[fig.t2], 10.0);
  EXPECT_DOUBLE_EQ(est[fig.t3], 20.0);
  EXPECT_DOUBLE_EQ(est[fig.t6], 30.0);
}

TEST(Algorithms, LevelWidthsFigure3) {
  const auto fig = makeFigure3Workflow();
  EXPECT_EQ(levelWidths(fig.wf), (std::vector<std::size_t>{1, 2, 3, 1}));
  EXPECT_EQ(maxLevelWidth(fig.wf), 3u);
}

TEST(Algorithms, MaxParallelismForkJoin) {
  EXPECT_EQ(maxParallelism(makeForkJoinWorkflow(17)), 17u);
}

TEST(Algorithms, MaxParallelismChainIsOne) {
  EXPECT_EQ(maxParallelism(makeChainWorkflow(12)), 1u);
}

TEST(Algorithms, MaxParallelismFigure3) {
  // Equal runtimes: the three stage-2 tasks run concurrently.
  EXPECT_EQ(maxParallelism(makeFigure3Workflow().wf), 3u);
}

TEST(Algorithms, MaxParallelismSeesCrossLevelOverlap) {
  // Two chains of different speeds from independent inputs: a slow task
  // overlaps the other chain's tasks even though levels differ.
  Workflow wf("overlap");
  const FileId inA = wf.addFile("inA", Bytes(1.0));
  const FileId inB = wf.addFile("inB", Bytes(1.0));
  const TaskId slow = wf.addTask("slow", "t", 100.0);
  wf.addInput(slow, inA);
  const FileId so = wf.addFile("so", Bytes(1.0));
  wf.addOutput(slow, so);
  const TaskId b1 = wf.addTask("b1", "t", 10.0);
  wf.addInput(b1, inB);
  const FileId b1o = wf.addFile("b1o", Bytes(1.0));
  wf.addOutput(b1, b1o);
  const TaskId b2 = wf.addTask("b2", "t", 10.0);
  wf.addInput(b2, b1o);
  const FileId b2o = wf.addFile("b2o", Bytes(1.0));
  wf.addOutput(b2, b2o);
  wf.finalize();
  EXPECT_EQ(maxParallelism(wf), 2u);  // slow overlaps b1 then b2
  EXPECT_EQ(maxLevelWidth(wf), 2u);
}

TEST(Algorithms, BackToBackTasksNotCountedConcurrent) {
  EXPECT_EQ(maxParallelism(makeChainWorkflow(3)), 1u);
}

TEST(Algorithms, UnfinalizedWorkflowRejected) {
  Workflow wf("raw");
  wf.addTask("t", "t", 1.0);
  EXPECT_THROW(topologicalOrder(wf), std::logic_error);
  EXPECT_THROW(criticalPathSeconds(wf), std::logic_error);
  EXPECT_THROW(levelWidths(wf), std::logic_error);
  EXPECT_THROW(maxParallelism(wf), std::logic_error);
}

TEST(Algorithms, EmptyWorkflow) {
  Workflow wf("empty");
  wf.finalize();
  EXPECT_TRUE(topologicalOrder(wf).empty());
  EXPECT_DOUBLE_EQ(criticalPathSeconds(wf), 0.0);
  EXPECT_EQ(maxParallelism(wf), 0u);
}

}  // namespace
}  // namespace mcsim::dag
