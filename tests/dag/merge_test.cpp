#include "mcsim/dag/merge.hpp"

#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::dag {
namespace {

using test::makeChainWorkflow;
using test::makeFigure3Workflow;

TEST(Merge, CountsAreSums) {
  const auto a = makeFigure3Workflow().wf;
  const auto b = makeChainWorkflow(5);
  const Workflow merged = mergeWorkflows({a, b}, "combo");
  EXPECT_EQ(merged.name(), "combo");
  EXPECT_EQ(merged.taskCount(), a.taskCount() + b.taskCount());
  EXPECT_EQ(merged.fileCount(), a.fileCount() + b.fileCount());
  EXPECT_DOUBLE_EQ(merged.totalRuntimeSeconds(),
                   a.totalRuntimeSeconds() + b.totalRuntimeSeconds());
  EXPECT_DOUBLE_EQ(merged.totalFileBytes().value(),
                   a.totalFileBytes().value() + b.totalFileBytes().value());
}

TEST(Merge, PartsStayIndependent) {
  const auto a = makeChainWorkflow(4);
  const auto b = makeChainWorkflow(6);
  const Workflow merged = mergeWorkflows({a, b});
  // Critical path is the longer chain, not the sum: no cross-edges.
  EXPECT_DOUBLE_EQ(criticalPathSeconds(merged), criticalPathSeconds(b));
  // Both chains can run concurrently.
  EXPECT_EQ(maxParallelism(merged), 2u);
}

TEST(Merge, NamesArePrefixed) {
  const auto a = makeChainWorkflow(2);
  const auto b = makeFigure3Workflow().wf;
  const Workflow merged = mergeWorkflows({a, b});
  EXPECT_EQ(merged.task(0).name, "chain-2/t0");
  // Figure3's tasks come after the chain's.
  EXPECT_EQ(merged.task(a.taskCount()).name, "figure3/t0");
}

TEST(Merge, DuplicateNamesGetPositionalPrefixes) {
  const auto a = makeChainWorkflow(3);
  const Workflow merged = mergeWorkflows({a, a});
  EXPECT_EQ(merged.task(0).name, "req0/t0");
  EXPECT_EQ(merged.task(a.taskCount()).name, "req1/t0");
}

TEST(Merge, ExplicitOutputsSurvive) {
  auto fig = makeFigure3Workflow();
  fig.wf.markExplicitOutput(fig.c);
  const Workflow merged = mergeWorkflows({fig.wf});
  EXPECT_EQ(merged.workflowOutputs().size(), 3u);  // g, h, c
}

TEST(Merge, ControlDependenciesSurvive) {
  Workflow ctrl("ctrl");
  const TaskId t1 = ctrl.addTask("a", "t", 1.0);
  const TaskId t2 = ctrl.addTask("b", "t", 1.0);
  ctrl.addControlDependency(t1, t2);
  ctrl.finalize();
  const Workflow merged = mergeWorkflows({ctrl, ctrl});
  EXPECT_EQ(merged.controlDependencies().size(), 2u);
  EXPECT_EQ(merged.task(1).parents, (std::vector<TaskId>{0}));
  EXPECT_EQ(merged.task(3).parents, (std::vector<TaskId>{2}));
}

TEST(Merge, EmptyInputRejected) {
  EXPECT_THROW(mergeWorkflows({}), std::invalid_argument);
}

TEST(Replicate, MakesIndependentCopies) {
  const auto wf = makeChainWorkflow(3, 10.0);
  const Workflow batch = replicateWorkflow(wf, 4);
  EXPECT_EQ(batch.taskCount(), 12u);
  EXPECT_EQ(maxParallelism(batch), 4u);
  EXPECT_DOUBLE_EQ(criticalPathSeconds(batch), 30.0);
}

TEST(Replicate, InvalidCountRejected) {
  const auto wf = makeChainWorkflow(2);
  EXPECT_THROW(replicateWorkflow(wf, 0), std::invalid_argument);
}

TEST(Replicate, BatchThroughEngineMatchesScaledSingle) {
  // k independent requests on a pool of k processors: batch makespan equals
  // a single request's makespan on one processor (plus shared stage-out
  // concurrency), and all metrics scale linearly.
  const auto wf = makeChainWorkflow(4, 10.0);
  const Workflow batch = replicateWorkflow(wf, 3);
  engine::EngineConfig one;
  one.processors = 1;
  one.linkBandwidthBytesPerSec = 1e6;
  const auto single = engine::simulateWorkflow(wf, one);
  engine::EngineConfig three = one;
  three.processors = 3;
  const auto merged = engine::simulateWorkflow(batch, three);
  EXPECT_NEAR(merged.makespanSeconds, single.makespanSeconds, 1e-9);
  EXPECT_NEAR(merged.cpuBusySeconds, 3.0 * single.cpuBusySeconds, 1e-9);
  EXPECT_NEAR(merged.bytesIn.value(), 3.0 * single.bytesIn.value(), 1e-6);
}

TEST(Replicate, ContentionStretchesMakespan) {
  // 8 requests on 2 processors: roughly 4x a single request's serial time.
  const auto wf = makeChainWorkflow(5, 10.0);
  const Workflow batch = replicateWorkflow(wf, 8);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  cfg.linkBandwidthBytesPerSec = 1e9;  // transfers negligible
  const auto r = engine::simulateWorkflow(batch, cfg);
  EXPECT_NEAR(r.makespanSeconds, 8.0 * 50.0 / 2.0, 1.0);
}

}  // namespace
}  // namespace mcsim::dag
