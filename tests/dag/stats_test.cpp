#include "mcsim/dag/stats.hpp"

#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::dag {
namespace {

TEST(Distribution, TracksMinMaxMeanCount) {
  Distribution d;
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  d.add(10.0);
  d.add(2.0);
  d.add(6.0);
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.minimum, 2.0);
  EXPECT_DOUBLE_EQ(d.maximum, 10.0);
  EXPECT_DOUBLE_EQ(d.mean(), 6.0);
  EXPECT_DOUBLE_EQ(d.total, 18.0);
}

TEST(Distribution, NegativeAndSingleValues) {
  Distribution d;
  d.add(-5.0);
  EXPECT_DOUBLE_EQ(d.minimum, -5.0);
  EXPECT_DOUBLE_EQ(d.maximum, -5.0);
  EXPECT_DOUBLE_EQ(d.mean(), -5.0);
}

TEST(Stats, Figure3Profile) {
  const auto fig = test::makeFigure3Workflow();
  const WorkflowStats stats = computeStats(fig.wf);
  ASSERT_EQ(stats.byType.size(), 4u);  // stage0..stage3
  EXPECT_EQ(stats.byType.at("stage1").runtimeSeconds.count, 2u);
  EXPECT_EQ(stats.byType.at("stage2").runtimeSeconds.count, 3u);
  EXPECT_DOUBLE_EQ(stats.byType.at("stage2").runtimeSeconds.total, 30.0);
  // Every task of every stage emits one 1 MB file.
  EXPECT_DOUBLE_EQ(stats.byType.at("stage0").outputBytes.mean(), 1e6);

  ASSERT_EQ(stats.byLevel.size(), 4u);
  EXPECT_EQ(stats.byLevel.at(3).tasks, 3u);
  EXPECT_DOUBLE_EQ(stats.byLevel.at(3).bytesProduced.mb(), 3.0);
  EXPECT_DOUBLE_EQ(stats.byLevel.at(1).runtimeSeconds, 10.0);

  EXPECT_EQ(stats.fileSizes.count, 8u);
  EXPECT_DOUBLE_EQ(stats.fileSizes.mean(), 1e6);
}

TEST(Stats, MontageRoutineBreakdown) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const WorkflowStats stats = computeStats(wf);
  EXPECT_EQ(stats.byType.size(), 9u);
  EXPECT_EQ(stats.byType.at("mProject").runtimeSeconds.count, 45u);
  EXPECT_EQ(stats.byType.at("mDiffFit").runtimeSeconds.count, 107u);
  // mProject dominates total CPU time.
  for (const auto& [name, type] : stats.byType) {
    if (name == "mProject") continue;
    EXPECT_GT(stats.byType.at("mProject").runtimeSeconds.total,
              type.runtimeSeconds.total)
        << name;
  }
  // Level totals reassemble the whole workflow.
  double runtime = 0.0;
  std::size_t tasks = 0;
  for (const auto& [level, stats2] : stats.byLevel) {
    runtime += stats2.runtimeSeconds;
    tasks += stats2.tasks;
  }
  EXPECT_NEAR(runtime, wf.totalRuntimeSeconds(), 1e-6);
  EXPECT_EQ(tasks, wf.taskCount());
}

TEST(Stats, UnfinalizedRejected) {
  Workflow wf("raw");
  wf.addTask("t", "t", 1.0);
  EXPECT_THROW(computeStats(wf), std::logic_error);
}

TEST(Stats, EmptyWorkflow) {
  Workflow wf("empty");
  wf.finalize();
  const WorkflowStats stats = computeStats(wf);
  EXPECT_TRUE(stats.byType.empty());
  EXPECT_TRUE(stats.byLevel.empty());
  EXPECT_EQ(stats.fileSizes.count, 0u);
}

}  // namespace
}  // namespace mcsim::dag
