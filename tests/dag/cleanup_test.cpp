#include "mcsim/dag/cleanup.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/common/fixtures.hpp"
#include "mcsim/dag/algorithms.hpp"

namespace mcsim::dag {
namespace {

using test::makeChainWorkflow;
using test::makeFigure3Workflow;

TEST(Cleanup, Figure3ReleaseConditions) {
  const auto fig = makeFigure3Workflow();
  const CleanupPlan plan = analyzeCleanup(fig.wf);
  // "file a would be deleted after task 0 has completed": one use.
  EXPECT_EQ(plan.remainingUses[fig.a], 1u);
  // "file b would be deleted only when task 6 has completed": three
  // consumers (t1, t2, t6) -- the last one to finish is t6.
  EXPECT_EQ(plan.remainingUses[fig.b], 3u);
  EXPECT_EQ(plan.remainingUses[fig.c], 2u);  // t4, t5
  EXPECT_EQ(plan.remainingUses[fig.d], 1u);  // t3
  EXPECT_EQ(plan.remainingUses[fig.e], 1u);
  EXPECT_EQ(plan.remainingUses[fig.f], 1u);
  // g and h are the net outputs: retained for stage-out.
  EXPECT_TRUE(plan.isOutput[fig.g]);
  EXPECT_TRUE(plan.isOutput[fig.h]);
  EXPECT_FALSE(plan.isOutput[fig.a]);
  EXPECT_FALSE(plan.isOutput[fig.b]);
}

TEST(Cleanup, UnconsumedLeafHasProducerUse) {
  const auto fig = makeFigure3Workflow();
  const CleanupPlan plan = analyzeCleanup(fig.wf);
  // h has no consumers; its single "use" is its producer finishing, but as
  // an output it is never deleted mid-run.
  EXPECT_EQ(plan.remainingUses[fig.h], 1u);
}

TEST(Cleanup, RequiresFinalizedWorkflow) {
  Workflow wf("raw");
  wf.addTask("t", "t", 1.0);
  EXPECT_THROW(analyzeCleanup(wf), std::logic_error);
}

TEST(Footprint, ChainRegularVsCleanup) {
  // Chain of 4 tasks, 1 MB files: regular keeps all 5 files at the end
  // (peak 5 MB); cleanup holds at most 2 MB (current input + output).
  const auto wf = makeChainWorkflow(4);
  const auto est = predictSequentialFootprint(wf, topologicalOrder(wf));
  EXPECT_DOUBLE_EQ(est.peakRegular.mb(), 5.0);
  EXPECT_DOUBLE_EQ(est.peakCleanup.mb(), 2.0);
}

TEST(Footprint, Figure3CleanupBelowRegular) {
  const auto fig = makeFigure3Workflow();
  const auto est =
      predictSequentialFootprint(fig.wf, topologicalOrder(fig.wf));
  EXPECT_DOUBLE_EQ(est.peakRegular.mb(), 8.0);  // every file ever created
  EXPECT_LT(est.peakCleanup, est.peakRegular);
  // Walk the canonical order by hand: a+b(2) -> +c(3) -> +d(4) -a(3)... the
  // peak is bounded below by the largest live set, >= 4 files here.
  EXPECT_GE(est.peakCleanup.mb(), 4.0);
}

TEST(Footprint, CleanupNeverExceedsRegular) {
  for (int len : {1, 2, 3, 8, 20}) {
    const auto wf = makeChainWorkflow(len);
    const auto est = predictSequentialFootprint(wf, topologicalOrder(wf));
    EXPECT_LE(est.peakCleanup, est.peakRegular) << "chain length " << len;
  }
}

TEST(Footprint, OrderMustCoverAllTasks) {
  const auto fig = makeFigure3Workflow();
  EXPECT_THROW(predictSequentialFootprint(fig.wf, {fig.t0}),
               std::invalid_argument);
}

TEST(Footprint, NonTopologicalOrderDetected) {
  const auto wf = makeChainWorkflow(3);
  // Reverse order consumes files before producing them.
  std::vector<TaskId> order = topologicalOrder(wf);
  std::reverse(order.begin(), order.end());
  EXPECT_THROW(predictSequentialFootprint(wf, order), std::logic_error);
}

TEST(Footprint, ExplicitOutputRetainedInCleanupWalk) {
  // Chain where the middle file is flagged as a user product: the cleanup
  // peak grows because it can't be deleted.
  auto wf = makeChainWorkflow(4);
  // File ids: in=0, f0=1, f1=2, f2=3, f3=4.
  const auto before =
      predictSequentialFootprint(wf, topologicalOrder(wf)).peakCleanup;
  wf.markExplicitOutput(1);
  const auto after =
      predictSequentialFootprint(wf, topologicalOrder(wf)).peakCleanup;
  EXPECT_GE(after, before);
  EXPECT_DOUBLE_EQ(after.mb(), 3.0);  // f0 pinned + live pair
}

}  // namespace
}  // namespace mcsim::dag
