#include "mcsim/dag/workflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "tests/common/fixtures.hpp"

namespace mcsim::dag {
namespace {

using test::makeFigure3Workflow;

TEST(Workflow, Figure3StructureDerivedFromDataFlow) {
  const auto fig = makeFigure3Workflow();
  const Workflow& wf = fig.wf;
  EXPECT_EQ(wf.taskCount(), 7u);
  EXPECT_EQ(wf.fileCount(), 8u);

  // t0 is the only source; its children are b's consumers: t1, t2, t6.
  EXPECT_TRUE(wf.task(fig.t0).parents.empty());
  EXPECT_EQ(wf.task(fig.t0).children,
            (std::vector<TaskId>{fig.t1, fig.t2, fig.t6}));
  // t6's parents: producers of e, f, b = t4, t3, t0 (sorted by id).
  EXPECT_EQ(wf.task(fig.t6).parents,
            (std::vector<TaskId>{fig.t0, fig.t3, fig.t4}));
}

TEST(Workflow, Figure3LevelsFollowPaperDefinition) {
  const auto fig = makeFigure3Workflow();
  EXPECT_EQ(fig.wf.task(fig.t0).level, 1);
  EXPECT_EQ(fig.wf.task(fig.t1).level, 2);
  EXPECT_EQ(fig.wf.task(fig.t2).level, 2);
  EXPECT_EQ(fig.wf.task(fig.t3).level, 3);
  EXPECT_EQ(fig.wf.task(fig.t4).level, 3);
  EXPECT_EQ(fig.wf.task(fig.t5).level, 3);
  EXPECT_EQ(fig.wf.task(fig.t6).level, 4);
  EXPECT_EQ(fig.wf.levelCount(), 4);
}

TEST(Workflow, Figure3ExternalInputsAndOutputs) {
  const auto fig = makeFigure3Workflow();
  EXPECT_EQ(fig.wf.externalInputs(), (std::vector<FileId>{fig.a}));
  // Net outputs g and h, exactly as the paper states.
  EXPECT_EQ(fig.wf.workflowOutputs(), (std::vector<FileId>{fig.g, fig.h}));
  EXPECT_DOUBLE_EQ(fig.wf.externalInputBytes().mb(), 1.0);
  EXPECT_DOUBLE_EQ(fig.wf.workflowOutputBytes().mb(), 2.0);
}

TEST(Workflow, TotalsAndCcr) {
  const auto fig = makeFigure3Workflow();
  EXPECT_DOUBLE_EQ(fig.wf.totalRuntimeSeconds(), 70.0);
  EXPECT_DOUBLE_EQ(fig.wf.totalFileBytes().mb(), 8.0);
  // CCR = (8 MB / 1 MB/s) / 70 s.
  EXPECT_NEAR(fig.wf.ccr(1e6), 8.0 / 70.0, 1e-12);
}

TEST(Workflow, ExplicitOutputSurvivesConsumption) {
  auto fig = makeFigure3Workflow();
  fig.wf.markExplicitOutput(fig.c);  // consumed by t4 and t5, now also output
  const auto outs = fig.wf.workflowOutputs();
  EXPECT_NE(std::find(outs.begin(), outs.end(), fig.c), outs.end());
}

TEST(Workflow, CycleDetected) {
  Workflow wf("cyclic");
  const FileId x = wf.addFile("x", Bytes(1.0));
  const FileId y = wf.addFile("y", Bytes(1.0));
  const TaskId t1 = wf.addTask("t1", "t", 1.0);
  const TaskId t2 = wf.addTask("t2", "t", 1.0);
  wf.addInput(t1, x);
  wf.addOutput(t1, y);
  wf.addInput(t2, y);
  wf.addOutput(t2, x);
  EXPECT_THROW(wf.finalize(), std::logic_error);
}

TEST(Workflow, ControlDependencyCycleDetected) {
  Workflow wf("ctrl-cyclic");
  const TaskId t1 = wf.addTask("t1", "t", 1.0);
  const TaskId t2 = wf.addTask("t2", "t", 1.0);
  wf.addControlDependency(t1, t2);
  wf.addControlDependency(t2, t1);
  EXPECT_THROW(wf.finalize(), std::logic_error);
}

TEST(Workflow, ControlDependencyCreatesEdgeAndLevel) {
  Workflow wf("ctrl");
  const TaskId t1 = wf.addTask("t1", "t", 1.0);
  const TaskId t2 = wf.addTask("t2", "t", 1.0);
  wf.addControlDependency(t1, t2);
  wf.finalize();
  EXPECT_EQ(wf.task(t2).parents, (std::vector<TaskId>{t1}));
  EXPECT_EQ(wf.task(t2).level, 2);
  ASSERT_EQ(wf.controlDependencies().size(), 1u);
}

TEST(Workflow, SelfProducingTaskRejected) {
  // Both binding orders are rejected immediately.
  Workflow wf("selfloop");
  const FileId x = wf.addFile("x", Bytes(1.0));
  const TaskId t = wf.addTask("t", "t", 1.0);
  wf.addInput(t, x);
  EXPECT_THROW(wf.addOutput(t, x), std::invalid_argument);
  Workflow wf2("selfloop2");
  const FileId y = wf2.addFile("y", Bytes(1.0));
  const TaskId u = wf2.addTask("u", "t", 1.0);
  wf2.addOutput(u, y);
  EXPECT_THROW(wf2.addInput(u, y), std::invalid_argument);
}

TEST(Workflow, SecondProducerRejected) {
  Workflow wf("two-producers");
  const FileId x = wf.addFile("x", Bytes(1.0));
  const TaskId t1 = wf.addTask("t1", "t", 1.0);
  const TaskId t2 = wf.addTask("t2", "t", 1.0);
  wf.addOutput(t1, x);
  EXPECT_THROW(wf.addOutput(t2, x), std::invalid_argument);
}

TEST(Workflow, DuplicateInputBindingRejected) {
  Workflow wf("dup-input");
  const FileId x = wf.addFile("x", Bytes(1.0));
  const TaskId t = wf.addTask("t", "t", 1.0);
  wf.addInput(t, x);
  EXPECT_THROW(wf.addInput(t, x), std::invalid_argument);
}

TEST(Workflow, InvalidIdsRejected) {
  Workflow wf("bad-ids");
  const TaskId t = wf.addTask("t", "t", 1.0);
  const FileId x = wf.addFile("x", Bytes(1.0));
  EXPECT_THROW(wf.addInput(t, 99), std::out_of_range);
  EXPECT_THROW(wf.addInput(99, x), std::out_of_range);
  EXPECT_THROW(wf.addOutput(99, x), std::out_of_range);
  EXPECT_THROW(wf.addControlDependency(t, 99), std::out_of_range);
  EXPECT_THROW(wf.setFileSize(99, Bytes(1.0)), std::out_of_range);
  EXPECT_THROW(wf.markExplicitOutput(99), std::out_of_range);
}

TEST(Workflow, NegativeQuantitiesRejected) {
  Workflow wf("neg");
  EXPECT_THROW(wf.addTask("t", "t", -1.0), std::invalid_argument);
  EXPECT_THROW(wf.addFile("x", Bytes(-1.0)), std::invalid_argument);
}

TEST(Workflow, MutationAfterFinalizeRejected) {
  auto fig = makeFigure3Workflow();
  EXPECT_THROW(fig.wf.addTask("late", "t", 1.0), std::logic_error);
  EXPECT_THROW(fig.wf.addFile("late", Bytes(1.0)), std::logic_error);
  EXPECT_THROW(fig.wf.addInput(fig.t0, fig.g), std::logic_error);
  EXPECT_THROW(fig.wf.addOutput(fig.t0, fig.g), std::logic_error);
  EXPECT_THROW(fig.wf.addControlDependency(fig.t0, fig.t1), std::logic_error);
}

TEST(Workflow, FinalizeIsIdempotent) {
  auto fig = makeFigure3Workflow();
  EXPECT_TRUE(fig.wf.finalized());
  fig.wf.finalize();  // no-op
  EXPECT_EQ(fig.wf.task(fig.t6).parents.size(), 3u);
}

TEST(Workflow, SizeScalingAllowedAfterFinalize) {
  auto fig = makeFigure3Workflow();
  fig.wf.setFileSize(fig.a, Bytes::fromMB(10.0));
  EXPECT_DOUBLE_EQ(fig.wf.file(fig.a).size.mb(), 10.0);
  fig.wf.scaleAllFileSizes(2.0);
  EXPECT_DOUBLE_EQ(fig.wf.file(fig.a).size.mb(), 20.0);
  EXPECT_DOUBLE_EQ(fig.wf.file(fig.b).size.mb(), 2.0);
  EXPECT_THROW(fig.wf.scaleAllFileSizes(0.0), std::invalid_argument);
  EXPECT_THROW(fig.wf.scaleAllFileSizes(-1.0), std::invalid_argument);
}

TEST(Workflow, RuntimeScalingAllowedAfterFinalize) {
  auto fig = makeFigure3Workflow();
  fig.wf.scaleAllRuntimes(3.0);
  EXPECT_DOUBLE_EQ(fig.wf.totalRuntimeSeconds(), 210.0);
  EXPECT_THROW(fig.wf.scaleAllRuntimes(0.0), std::invalid_argument);
}

TEST(Workflow, CcrValidation) {
  auto fig = makeFigure3Workflow();
  EXPECT_THROW(fig.wf.ccr(0.0), std::invalid_argument);
  Workflow empty("empty");
  empty.finalize();
  EXPECT_THROW(empty.ccr(1.0), std::logic_error);
}

TEST(Workflow, EmptyWorkflowFinalizes) {
  Workflow wf("empty");
  wf.finalize();
  EXPECT_EQ(wf.taskCount(), 0u);
  EXPECT_EQ(wf.levelCount(), 0);
  EXPECT_TRUE(wf.externalInputs().empty());
  EXPECT_TRUE(wf.workflowOutputs().empty());
}

TEST(Workflow, ParallelTasksShareLevelOne) {
  Workflow wf("flat");
  for (int i = 0; i < 5; ++i) {
    const FileId in = wf.addFile("in" + std::to_string(i), Bytes(1.0));
    const TaskId t = wf.addTask("t" + std::to_string(i), "t", 1.0);
    wf.addInput(t, in);
    const FileId out = wf.addFile("out" + std::to_string(i), Bytes(1.0));
    wf.addOutput(t, out);
  }
  wf.finalize();
  for (const Task& t : wf.tasks()) EXPECT_EQ(t.level, 1);
  EXPECT_EQ(wf.externalInputs().size(), 5u);
  EXPECT_EQ(wf.workflowOutputs().size(), 5u);
}

}  // namespace
}  // namespace mcsim::dag
