#include "mcsim/dag/dax.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/common/fixtures.hpp"
#include "mcsim/dag/algorithms.hpp"

namespace mcsim::dag {
namespace {

constexpr const char* kSmallDax = R"(<?xml version="1.0"?>
<adag name="mini">
  <job id="J1" name="mProject_1" type="mProject" runtime="98.5">
    <uses file="in.fits" link="input" size="4000000"/>
    <uses file="proj.fits" link="output" size="16000000"/>
  </job>
  <job id="J2" name="mAdd" type="mAdd" runtime="120">
    <uses file="proj.fits" link="input" size="16000000"/>
    <uses file="mosaic.fits" link="output" size="173460000"/>
  </job>
</adag>)";

TEST(Dax, ParsesJobsFilesAndDependencies) {
  const Workflow wf = readDax(kSmallDax);
  EXPECT_EQ(wf.name(), "mini");
  ASSERT_EQ(wf.taskCount(), 2u);
  ASSERT_EQ(wf.fileCount(), 3u);
  EXPECT_EQ(wf.task(0).name, "mProject_1");
  EXPECT_EQ(wf.task(0).type, "mProject");
  EXPECT_DOUBLE_EQ(wf.task(0).runtimeSeconds, 98.5);
  // Data dependency via proj.fits.
  EXPECT_EQ(wf.task(1).parents, (std::vector<TaskId>{0}));
  EXPECT_EQ(wf.task(1).level, 2);
  EXPECT_EQ(wf.externalInputs().size(), 1u);
  EXPECT_EQ(wf.workflowOutputs().size(), 1u);
  EXPECT_DOUBLE_EQ(wf.file(wf.workflowOutputs()[0]).size.mb(), 173.46);
}

TEST(Dax, ExplicitControlEdges) {
  const Workflow wf = readDax(R"(<adag>
    <job id="A" runtime="1"/>
    <job id="B" runtime="1"/>
    <child ref="B"><parent ref="A"/></child>
  </adag>)");
  EXPECT_EQ(wf.task(1).parents, (std::vector<TaskId>{0}));
}

TEST(Dax, JobNameDefaultsFromId) {
  const Workflow wf = readDax(R"(<adag><job id="X" runtime="2"/></adag>)");
  EXPECT_EQ(wf.task(0).name, "X");
  EXPECT_EQ(wf.task(0).type, "X");
}

TEST(Dax, RoundTripFigure3) {
  const auto fig = test::makeFigure3Workflow();
  const std::string xml = writeDax(fig.wf);
  const Workflow back = readDax(xml);
  ASSERT_EQ(back.taskCount(), fig.wf.taskCount());
  ASSERT_EQ(back.fileCount(), fig.wf.fileCount());
  EXPECT_DOUBLE_EQ(back.totalRuntimeSeconds(), fig.wf.totalRuntimeSeconds());
  EXPECT_DOUBLE_EQ(back.totalFileBytes().value(),
                   fig.wf.totalFileBytes().value());
  for (TaskId t = 0; t < back.taskCount(); ++t) {
    EXPECT_EQ(back.task(t).parents, fig.wf.task(t).parents);
    EXPECT_EQ(back.task(t).level, fig.wf.task(t).level);
  }
  EXPECT_DOUBLE_EQ(criticalPathSeconds(back), criticalPathSeconds(fig.wf));
}

TEST(Dax, RoundTripPreservesControlDependencies) {
  Workflow wf("ctrl");
  const TaskId a = wf.addTask("a", "t", 1.0);
  const TaskId b = wf.addTask("b", "t", 2.0);
  wf.addControlDependency(a, b);
  wf.finalize();
  const Workflow back = readDax(writeDax(wf));
  EXPECT_EQ(back.task(1).parents, (std::vector<TaskId>{0}));
}

TEST(Dax, FileRoundTripThroughDisk) {
  const auto fig = test::makeFigure3Workflow();
  const std::string path = ::testing::TempDir() + "/fig3.dax";
  writeDaxFile(fig.wf, path);
  const Workflow back = readDaxFile(path);
  EXPECT_EQ(back.taskCount(), 7u);
  std::remove(path.c_str());
}

TEST(Dax, MissingFileThrows) {
  EXPECT_THROW(readDaxFile("/nonexistent/nowhere.dax"), std::runtime_error);
}

TEST(Dax, WrongRootRejected) {
  EXPECT_THROW(readDax("<dag/>"), std::runtime_error);
}

TEST(Dax, DuplicateJobIdRejected) {
  EXPECT_THROW(readDax(R"(<adag>
    <job id="A" runtime="1"/><job id="A" runtime="1"/>
  </adag>)"),
               std::runtime_error);
}

TEST(Dax, UnknownLinkKindRejected) {
  EXPECT_THROW(readDax(R"(<adag><job id="A" runtime="1">
    <uses file="x" link="inout" size="1"/>
  </job></adag>)"),
               std::runtime_error);
}

TEST(Dax, ConflictingFileSizesRejected) {
  EXPECT_THROW(readDax(R"(<adag>
    <job id="A" runtime="1"><uses file="x" link="output" size="100"/></job>
    <job id="B" runtime="1"><uses file="x" link="input" size="999"/></job>
  </adag>)"),
               std::runtime_error);
}

TEST(Dax, BadNumbersRejected) {
  EXPECT_THROW(readDax(R"(<adag><job id="A" runtime="fast"/></adag>)"),
               std::runtime_error);
  EXPECT_THROW(readDax(R"(<adag><job id="A" runtime="1">
    <uses file="x" link="input" size="big"/>
  </job></adag>)"),
               std::runtime_error);
}

TEST(Dax, UnknownChildRefRejected) {
  EXPECT_THROW(readDax(R"(<adag>
    <job id="A" runtime="1"/>
    <child ref="Z"><parent ref="A"/></child>
  </adag>)"),
               std::runtime_error);
  EXPECT_THROW(readDax(R"(<adag>
    <job id="A" runtime="1"/>
    <child ref="A"><parent ref="Z"/></child>
  </adag>)"),
               std::runtime_error);
}

TEST(Dax, MissingRequiredAttributesRejected) {
  EXPECT_THROW(readDax(R"(<adag><job runtime="1"/></adag>)"),
               std::out_of_range);
  EXPECT_THROW(readDax(R"(<adag><job id="A"/></adag>)"), std::out_of_range);
}

TEST(Dax, TransferFlagMarksExplicitOutput) {
  // Pegasus-style transfer="true": a consumed file that is still a user
  // product (like the Montage mosaic, which mShrink also reads).
  const Workflow wf = readDax(R"(<adag>
    <job id="A" runtime="1">
      <uses file="mid" link="output" size="10" transfer="true"/>
    </job>
    <job id="B" runtime="1">
      <uses file="mid" link="input" size="10"/>
      <uses file="leaf" link="output" size="5"/>
    </job>
  </adag>)");
  const auto outs = wf.workflowOutputs();
  ASSERT_EQ(outs.size(), 2u);  // mid (flagged) and leaf
  EXPECT_TRUE(wf.file(outs[0]).explicitOutput ||
              wf.file(outs[1]).explicitOutput);
}

TEST(Dax, TransferFlagRoundTrips) {
  Workflow wf("flagged");
  const TaskId producer = wf.addTask("p", "p", 1.0);
  const FileId mid = wf.addFile("mid", Bytes(10.0));
  wf.addOutput(producer, mid);
  const TaskId consumer = wf.addTask("c", "c", 1.0);
  wf.addInput(consumer, mid);
  const FileId leaf = wf.addFile("leaf", Bytes(5.0));
  wf.addOutput(consumer, leaf);
  wf.markExplicitOutput(mid);
  wf.finalize();
  const Workflow back = readDax(writeDax(wf));
  EXPECT_EQ(back.workflowOutputs().size(), 2u);
}

TEST(Dax, ReleaseAttributeParsed) {
  const Workflow wf = readDax(
      R"(<adag><job id="A" runtime="1" release="99.5"/></adag>)");
  EXPECT_DOUBLE_EQ(wf.task(0).earliestStartSeconds, 99.5);
}

TEST(Dax, SharedInputFileFansOut) {
  // One external file read by two jobs: both become level 1, no edges.
  const Workflow wf = readDax(R"(<adag>
    <job id="A" runtime="1"><uses file="shared" link="input" size="10"/></job>
    <job id="B" runtime="1"><uses file="shared" link="input" size="10"/></job>
  </adag>)");
  EXPECT_TRUE(wf.task(0).parents.empty());
  EXPECT_TRUE(wf.task(1).parents.empty());
  EXPECT_EQ(wf.fileCount(), 1u);
  EXPECT_EQ(wf.file(0).consumers.size(), 2u);
}

}  // namespace
}  // namespace mcsim::dag
