// WorkflowBuilder property tests: for randomized streaming construction
// sequences the built graph must match its closed-form counts, be acyclic
// with every non-root task wired to an upstream producer, replay
// byte-identically from the same seed, and agree field-for-field with the
// legacy Workflow::addTask/finalize path fed the identical call sequence.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mcsim/dag/dax.hpp"
#include "mcsim/dag/workflow.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::dag {
namespace {

/// Shape of one randomized streaming build, derived from the seed.
struct BuildPlan {
  int levels = 0;
  std::vector<int> tasksPerLevel;
  int externalInputs = 0;
};

BuildPlan makePlan(std::uint64_t seed) {
  Rng rng(seed);
  BuildPlan plan;
  plan.levels = static_cast<int>(rng.uniformInt(1, 6));
  for (int l = 0; l < plan.levels; ++l)
    plan.tasksPerLevel.push_back(static_cast<int>(rng.uniformInt(1, 12)));
  plan.externalInputs = static_cast<int>(rng.uniformInt(1, 8));
  return plan;
}

/// Drive one streaming construction sequence into `sink` (WorkflowBuilder
/// or legacy Workflow: same vocabulary).  Tasks arrive in topological
/// level order; each produces one file and binds a random subset of files
/// already declared — exactly the contract the builder streams under.
template <class Sink>
std::size_t emitRandom(Sink& sink, std::uint64_t seed, std::size_t* edges) {
  const BuildPlan plan = makePlan(seed);
  Rng rng(seed * 1001 + 17);

  std::vector<FileId> available;  // files with a declared producer or external
  for (int i = 0; i < plan.externalInputs; ++i)
    available.push_back(sink.addFile("ext_" + std::to_string(i),
                                     Bytes(1024.0 * (i + 1))));

  std::size_t inputEdges = 0;
  for (int level = 0; level < plan.levels; ++level) {
    std::vector<FileId> produced;
    for (int i = 0; i < plan.tasksPerLevel[level]; ++i) {
      const std::string stem =
          "L" + std::to_string(level) + "_" + std::to_string(i);
      const TaskId t = sink.addTask("task_" + stem, "type" +
                                        std::to_string(level % 3),
                                    1.0 + static_cast<double>(level));
      // Bind 1..4 distinct already-declared files (reject duplicates by
      // retrying; degree is tiny).
      const int want = static_cast<int>(rng.uniformInt(
          1, std::min<std::int64_t>(4, static_cast<std::int64_t>(
                                           available.size()))));
      std::vector<FileId> chosen;
      while (static_cast<int>(chosen.size()) < want) {
        const FileId f = available[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(available.size()) - 1))];
        if (std::find(chosen.begin(), chosen.end(), f) == chosen.end())
          chosen.push_back(f);
      }
      for (FileId f : chosen) {
        sink.addInput(t, f);
        ++inputEdges;
      }
      const FileId out =
          sink.addFile("out_" + stem, Bytes(4096.0 * (level + 1)));
      sink.addOutput(t, out);
      produced.push_back(out);
    }
    // Files produced on this level become available to later levels only —
    // the producer-before-consumer streaming order.
    available.insert(available.end(), produced.begin(), produced.end());
  }
  if (edges) *edges = inputEdges;

  std::size_t tasks = 0;
  for (int n : plan.tasksPerLevel) tasks += static_cast<std::size_t>(n);
  return tasks;
}

class BuilderProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderProperty,
                         ::testing::Range<std::uint64_t>(3000, 3024));

TEST_P(BuilderProperty, CountsMatchClosedForm) {
  WorkflowBuilder builder("prop");
  std::size_t edges = 0;
  const std::size_t tasks = emitRandom(builder, GetParam(), &edges);
  const BuildPlan plan = makePlan(GetParam());

  EXPECT_EQ(builder.taskCount(), tasks);
  EXPECT_EQ(builder.fileCount(),
            tasks + static_cast<std::size_t>(plan.externalInputs));

  const Workflow wf = builder.build();
  EXPECT_EQ(wf.taskCount(), tasks);
  EXPECT_EQ(wf.fileCount(),
            tasks + static_cast<std::size_t>(plan.externalInputs));
  std::size_t boundInputs = 0;
  for (const Task& t : wf.tasks()) boundInputs += t.inputs.size();
  EXPECT_EQ(boundInputs, edges);
}

TEST_P(BuilderProperty, AcyclicWithMonotoneLevels) {
  WorkflowBuilder builder("prop");
  emitRandom(builder, GetParam(), nullptr);
  const Workflow wf = builder.build();

  // Streaming order makes every parent id smaller than its child's, so
  // levels must be strictly increasing along every edge — the graph is
  // acyclic by construction and build() must agree.
  for (const Task& t : wf.tasks()) {
    for (TaskId p : t.parents) {
      EXPECT_LT(p, t.id);
      EXPECT_LT(wf.task(p).level, t.level);
    }
    for (TaskId c : t.children) EXPECT_GT(c, t.id);
  }
}

TEST_P(BuilderProperty, EveryNonRootTaskHasAnUpstreamProducer) {
  WorkflowBuilder builder("prop");
  emitRandom(builder, GetParam(), nullptr);
  const Workflow wf = builder.build();

  for (const Task& t : wf.tasks()) {
    if (t.level == 1) {
      // Roots (paper levels are 1-based) consume only external files.
      for (FileId f : t.inputs) EXPECT_EQ(wf.file(f).producer, kNoTask);
      continue;
    }
    bool hasProducedInput = false;
    for (FileId f : t.inputs)
      if (wf.file(f).producer != kNoTask) hasProducedInput = true;
    EXPECT_TRUE(hasProducedInput)
        << "task " << t.name << " at level " << t.level
        << " has no produced input";
  }
}

TEST_P(BuilderProperty, SameSeedReplaysByteIdentically) {
  WorkflowBuilder first("prop");
  WorkflowBuilder second("prop");
  emitRandom(first, GetParam(), nullptr);
  emitRandom(second, GetParam(), nullptr);
  // The DAX serialization covers names, types, runtimes, sizes and the
  // full edge structure; byte equality is the strongest cheap identity.
  EXPECT_EQ(writeDax(first.build()), writeDax(second.build()));
}

TEST_P(BuilderProperty, MatchesLegacyPathFedTheSameSequence) {
  WorkflowBuilder builder("prop");
  emitRandom(builder, GetParam(), nullptr);
  const Workflow streamed = builder.build();

  Workflow legacy("prop");
  emitRandom(legacy, GetParam(), nullptr);
  legacy.finalize();

  ASSERT_EQ(streamed.taskCount(), legacy.taskCount());
  ASSERT_EQ(streamed.fileCount(), legacy.fileCount());
  for (std::size_t i = 0; i < streamed.taskCount(); ++i) {
    const Task& a = streamed.task(static_cast<TaskId>(i));
    const Task& b = legacy.task(static_cast<TaskId>(i));
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.runtimeSeconds, b.runtimeSeconds);
    EXPECT_EQ(a.earliestStartSeconds, b.earliestStartSeconds);
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.parents, b.parents);
    EXPECT_EQ(a.children, b.children);
    EXPECT_EQ(a.level, b.level);
  }
  for (std::size_t i = 0; i < streamed.fileCount(); ++i) {
    const File& a = streamed.file(static_cast<FileId>(i));
    const File& b = legacy.file(static_cast<FileId>(i));
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.size.value(), b.size.value());
    EXPECT_EQ(a.producer, b.producer);
    EXPECT_EQ(a.consumers, b.consumers);
    EXPECT_EQ(a.explicitOutput, b.explicitOutput);
  }
}

TEST(WorkflowBuilderContract, RejectsBindingsOffTheNewestTask) {
  WorkflowBuilder builder("contract");
  const FileId f = builder.addFile("f", Bytes(1.0));
  const TaskId a = builder.addTask("a", "t", 1.0);
  builder.addInput(a, f);
  builder.addTask("b", "t", 1.0);
  EXPECT_THROW(builder.addInput(a, f), std::logic_error);
  EXPECT_THROW(builder.addOutput(a, f), std::logic_error);
}

TEST(WorkflowBuilderContract, RejectsConsumerBeforeProducer) {
  WorkflowBuilder builder("contract");
  const FileId f = builder.addFile("f", Bytes(1.0));
  const TaskId a = builder.addTask("a", "t", 1.0);
  builder.addInput(a, f);
  const TaskId b = builder.addTask("b", "t", 1.0);
  // f already has a consumer; declaring its producer now would let a cycle
  // slip past the single forward sweep.
  EXPECT_THROW(builder.addOutput(b, f), std::logic_error);
}

TEST(WorkflowBuilderContract, RejectsBackwardControlEdgesAndEmptyBuild) {
  WorkflowBuilder builder("contract");
  EXPECT_THROW(builder.build(), std::logic_error);
  const TaskId a = builder.addTask("a", "t", 1.0);
  const TaskId b = builder.addTask("b", "t", 1.0);
  EXPECT_THROW(builder.addControlDependency(b, a), std::logic_error);
  EXPECT_THROW(builder.addControlDependency(a, a), std::logic_error);
  builder.addControlDependency(a, b);
  const Workflow wf = builder.build();
  EXPECT_EQ(wf.task(b).parents, std::vector<TaskId>{a});
  // build() leaves the builder empty and reusable.
  EXPECT_EQ(builder.taskCount(), 0u);
  EXPECT_THROW(builder.build(), std::logic_error);
}

}  // namespace
}  // namespace mcsim::dag
