// DAX reader fuzzing: random workflows must survive a write -> parse ->
// write round trip byte-for-byte, and mangled documents must be rejected
// with an exception — never a crash, hang or silently wrong graph.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "mcsim/dag/dax.hpp"
#include "mcsim/dag/random_dag.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::dag {
namespace {

class DaxFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DaxFuzz,
                         ::testing::Range<std::uint64_t>(900, 920));

TEST_P(DaxFuzz, RandomWorkflowsRoundTripByteForByte) {
  const Workflow wf = makeRandomWorkflow(GetParam());
  const std::string once = writeDax(wf);
  const Workflow parsed = readDax(once);
  EXPECT_EQ(parsed.taskCount(), wf.taskCount());
  // DAX carries files only through job <uses> entries, so files no task
  // references cannot survive the trip; everything reachable must.
  std::set<FileId> used;
  double usedBytes = 0.0;
  for (const Task& t : wf.tasks()) {
    for (const FileId f : t.inputs) used.insert(f);
    for (const FileId f : t.outputs) used.insert(f);
  }
  for (const FileId f : used) usedBytes += wf.file(f).size.value();
  EXPECT_EQ(parsed.fileCount(), used.size());
  // The writer emits 6 significant digits, so values survive a parse only
  // to that precision; the structure must survive exactly.
  EXPECT_NEAR(parsed.totalRuntimeSeconds(), wf.totalRuntimeSeconds(),
              1e-5 * wf.totalRuntimeSeconds());
  EXPECT_NEAR(parsed.totalFileBytes().value(), usedBytes, 1e-5 * usedBytes);
  for (const Task& t : wf.tasks()) {
    EXPECT_EQ(parsed.task(t.id).parents, t.parents);
    EXPECT_EQ(parsed.task(t.id).inputs.size(), t.inputs.size());
    EXPECT_EQ(parsed.task(t.id).outputs.size(), t.outputs.size());
  }
  // The fixed point: serializing the parse reproduces the document exactly.
  EXPECT_EQ(writeDax(parsed), once);
}

TEST_P(DaxFuzz, TruncatedDocumentsAreRejectedNotCrashed) {
  const std::string full = writeDax(makeRandomWorkflow(GetParam()));
  Rng rng(GetParam() * 7 + 3);
  for (int i = 0; i < 32; ++i) {
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(full.size()) - 1));
    const std::string broken = full.substr(0, cut);
    try {
      const Workflow wf = readDax(broken);
      // A prefix that still parses must at least be a coherent graph.
      EXPECT_LE(wf.taskCount(), 1000u);
    } catch (const std::exception&) {
      // Rejection is the expected outcome; any std::exception is fine.
    }
  }
}

TEST_P(DaxFuzz, MutatedDocumentsNeverEscapeAsNonExceptions) {
  const std::string full = writeDax(makeRandomWorkflow(GetParam()));
  Rng rng(GetParam() * 13 + 5);
  for (int i = 0; i < 32; ++i) {
    std::string mangled = full;
    // Flip a handful of bytes to printable garbage.
    const int flips = static_cast<int>(rng.uniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(mangled.size()) - 1));
      mangled[pos] = static_cast<char>(rng.uniformInt(32, 126));
    }
    try {
      readDax(mangled);  // may succeed if the mutation was harmless
    } catch (const std::exception&) {
      // Parse/structure errors are all derived from std::exception.
    }
  }
}

TEST(DaxFuzz, ClassicMalformations) {
  EXPECT_THROW(readDax(""), std::exception);
  EXPECT_THROW(readDax("<adag"), std::exception);
  EXPECT_THROW(readDax("<adag><job id='A' runtime='1'/>"), std::exception);
  EXPECT_THROW(readDax("not xml at all"), std::exception);
  EXPECT_THROW(readDax("<adag><job id=\"A\" runtime=\"nan-ish\"/></adag>"),
               std::exception);
  EXPECT_THROW(
      readDax(R"(<adag><job id="A" runtime="1"/><job id="A" runtime="2"/></adag>)"),
      std::exception);
  EXPECT_THROW(
      readDax(R"(<adag><job id="A" runtime="1">
                   <uses file="f" link="sideways" size="1"/></job></adag>)"),
      std::exception);
}

}  // namespace
}  // namespace mcsim::dag
