#include "mcsim/dag/random_dag.hpp"

#include <gtest/gtest.h>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/dag/cleanup.hpp"

namespace mcsim::dag {
namespace {

TEST(RandomDag, Deterministic) {
  const Workflow a = makeRandomWorkflow(1234);
  const Workflow b = makeRandomWorkflow(1234);
  ASSERT_EQ(a.taskCount(), b.taskCount());
  ASSERT_EQ(a.fileCount(), b.fileCount());
  EXPECT_DOUBLE_EQ(a.totalRuntimeSeconds(), b.totalRuntimeSeconds());
  EXPECT_DOUBLE_EQ(a.totalFileBytes().value(), b.totalFileBytes().value());
  for (TaskId t = 0; t < a.taskCount(); ++t)
    EXPECT_EQ(a.task(t).parents, b.task(t).parents);
}

TEST(RandomDag, DifferentSeedsDiffer) {
  const Workflow a = makeRandomWorkflow(1);
  const Workflow b = makeRandomWorkflow(2);
  EXPECT_TRUE(a.taskCount() != b.taskCount() ||
              a.totalRuntimeSeconds() != b.totalRuntimeSeconds());
}

TEST(RandomDag, AlwaysValidDags) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Workflow wf = makeRandomWorkflow(seed);
    EXPECT_GT(wf.taskCount(), 0u) << "seed " << seed;
    // finalize() already validated acyclicity; spot-check invariants.
    const auto order = topologicalOrder(wf);
    EXPECT_EQ(order.size(), wf.taskCount()) << "seed " << seed;
    EXPECT_GT(criticalPathSeconds(wf), 0.0) << "seed " << seed;
    EXPECT_FALSE(wf.externalInputs().empty()) << "seed " << seed;
    EXPECT_FALSE(wf.workflowOutputs().empty()) << "seed " << seed;
    // Every task has at least one input and one output by construction.
    for (const Task& t : wf.tasks()) {
      EXPECT_FALSE(t.inputs.empty()) << "seed " << seed;
      EXPECT_FALSE(t.outputs.empty()) << "seed " << seed;
    }
  }
}

TEST(RandomDag, SinkConsumesTerminalLayer) {
  RandomDagOptions opt;
  opt.addSink = true;
  const Workflow wf = makeRandomWorkflow(7, opt);
  // Last task is the sink; it must have the maximum level.
  const Task& sink = wf.task(static_cast<TaskId>(wf.taskCount() - 1));
  EXPECT_EQ(sink.name, "sink");
  EXPECT_EQ(sink.level, wf.levelCount());
}

TEST(RandomDag, NoSinkOptionRespected) {
  RandomDagOptions opt;
  opt.addSink = false;
  const Workflow wf = makeRandomWorkflow(7, opt);
  for (const Task& t : wf.tasks()) EXPECT_NE(t.name, "sink");
}

TEST(RandomDag, FootprintInvariantHoldsAcrossSeeds) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const Workflow wf = makeRandomWorkflow(seed);
    const auto est = predictSequentialFootprint(wf, topologicalOrder(wf));
    EXPECT_LE(est.peakCleanup, est.peakRegular) << "seed " << seed;
    EXPECT_GT(est.peakCleanup.value(), 0.0) << "seed " << seed;
  }
}

TEST(RandomDag, RespectsLayerBounds) {
  RandomDagOptions opt;
  opt.minLayers = 3;
  opt.maxLayers = 3;
  opt.minWidth = 2;
  opt.maxWidth = 4;
  opt.addSink = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Workflow wf = makeRandomWorkflow(seed, opt);
    EXPECT_GE(wf.taskCount(), 6u);
    EXPECT_LE(wf.taskCount(), 12u);
    EXPECT_LE(wf.levelCount(), 3);
  }
}

}  // namespace
}  // namespace mcsim::dag
