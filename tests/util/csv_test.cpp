#include "mcsim/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mcsim {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"procs", "cost"});
  w.writeRow({"1", "0.60"});
  w.writeRow({"128", "3.95"});
  EXPECT_EQ(os.str(), "procs,cost\n1,0.60\n128,3.95\n");
  EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(CsvWriter, QuotesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, EscapingAppliedToCells) {
  std::ostringstream os;
  CsvWriter w(os, {"note"});
  w.writeRow({"a,b"});
  EXPECT_EQ(os.str(), "note\n\"a,b\"\n");
}

TEST(CsvWriter, ColumnArityEnforced) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.writeRow({"1"}), std::invalid_argument);
}

TEST(CsvWriter, EmptyHeaderRejected) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
