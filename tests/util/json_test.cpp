#include "mcsim/util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcsim::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.isNull());
  EXPECT_FALSE(v.isObject());
}

TEST(JsonValue, ConvenienceConstructors) {
  EXPECT_TRUE(JsonValue(nullptr).isNull());
  EXPECT_TRUE(JsonValue(true).isBool());
  EXPECT_TRUE(JsonValue(3.5).isNumber());
  EXPECT_TRUE(JsonValue(7).isNumber());
  EXPECT_TRUE(JsonValue(std::uint64_t{1} << 40).isNumber());
  EXPECT_TRUE(JsonValue("text").isString());
  EXPECT_TRUE(JsonValue(std::string("text")).isString());
  EXPECT_TRUE(JsonValue(JsonArray{}).isArray());
  EXPECT_TRUE(JsonValue(JsonObject{}).isObject());
}

TEST(JsonParse, RoundTripsEveryAlternative) {
  const std::string text =
      R"({"arr":[1,2.5,-3],"bool":true,"nested":{"deep":null},)"
      R"("num":42,"str":"hi \"quoted\" \\ line\n"})";
  const JsonValue v = parseJson(text);
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.at("num").asNumber(), 42.0);
  EXPECT_TRUE(v.at("bool").asBool());
  EXPECT_TRUE(v.at("nested").at("deep").isNull());
  ASSERT_EQ(v.at("arr").asArray().size(), 3u);
  EXPECT_EQ(v.at("arr").asArray()[1].asNumber(), 2.5);
  EXPECT_EQ(v.at("str").asString(), "hi \"quoted\" \\ line\n");
  // Deterministic writer: std::map key order, jsonl-compatible escaping.
  EXPECT_EQ(dumpJson(v), text);
}

TEST(JsonParse, NullLiteralParsesToNullValue) {
  const JsonValue v = parseJson(R"({"task":null})");
  EXPECT_TRUE(v.at("task").isNull());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parseJson(""), std::runtime_error);
  EXPECT_THROW(parseJson("{"), std::runtime_error);
  EXPECT_THROW(parseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parseJson("[1,2,]"), std::runtime_error);
  EXPECT_THROW(parseJson("nul"), std::runtime_error);
  EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
}

TEST(JsonValue, AccessorsEnforceTypes) {
  const JsonValue v = parseJson(R"({"n":1})");
  EXPECT_THROW(v.at("missing"), std::runtime_error);
  EXPECT_THROW(v.at("n").asString(), std::bad_variant_access);
  EXPECT_FALSE(v.has("missing"));
  EXPECT_TRUE(v.has("n"));
}

TEST(JsonWrite, NumbersUseJsonlPrecision) {
  // Matches obs/jsonl.cpp's %.12g contract so server results diff cleanly
  // against telemetry artifacts.
  JsonObject o;
  o["v"] = 10302.7681234;  // 12 significant digits survive exactly
  EXPECT_EQ(dumpJson(JsonValue(o)), R"({"v":10302.7681234})");
  o["v"] = 1e21;
  EXPECT_EQ(dumpJson(JsonValue(o)), R"({"v":1e+21})");
}

TEST(JsonParse, UnicodeEscapes) {
  const JsonValue v = parseJson(R"(["Aé"])");
  EXPECT_EQ(v.asArray()[0].asString(), "A\xc3\xa9");
}

}  // namespace
}  // namespace mcsim::json
