#include "mcsim/util/units.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

TEST(Bytes, UnitFactoriesRoundTrip) {
  EXPECT_DOUBLE_EQ(Bytes::fromKB(1.0).value(), 1e3);
  EXPECT_DOUBLE_EQ(Bytes::fromMB(1.0).value(), 1e6);
  EXPECT_DOUBLE_EQ(Bytes::fromGB(1.0).value(), 1e9);
  EXPECT_DOUBLE_EQ(Bytes::fromTB(1.0).value(), 1e12);
  EXPECT_DOUBLE_EQ(Bytes::fromGB(2.229).gb(), 2.229);
  EXPECT_DOUBLE_EQ(Bytes::fromMB(557.9).mb(), 557.9);
}

TEST(Bytes, SiNotBinaryGigabytes) {
  // The paper's arithmetic only works with SI units: 173.46 MB must be
  // 0.17346 GB, not 173.46/1024.
  EXPECT_DOUBLE_EQ(Bytes::fromMB(173.46).gb(), 0.17346);
}

TEST(Bytes, Arithmetic) {
  const Bytes a = Bytes::fromMB(4.0);
  const Bytes b = Bytes::fromMB(1.5);
  EXPECT_DOUBLE_EQ((a + b).mb(), 5.5);
  EXPECT_DOUBLE_EQ((a - b).mb(), 2.5);
  EXPECT_DOUBLE_EQ((a * 2.0).mb(), 8.0);
  EXPECT_DOUBLE_EQ((2.0 * a).mb(), 8.0);
  EXPECT_DOUBLE_EQ((a / 2.0).mb(), 2.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0 / 1.5);
}

TEST(Bytes, CompoundAssignmentAndComparison) {
  Bytes a = Bytes::fromMB(1.0);
  a += Bytes::fromMB(2.0);
  EXPECT_DOUBLE_EQ(a.mb(), 3.0);
  a -= Bytes::fromMB(1.0);
  EXPECT_DOUBLE_EQ(a.mb(), 2.0);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a.mb(), 6.0);
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a.mb(), 3.0);
  EXPECT_LT(Bytes::fromMB(1.0), Bytes::fromMB(2.0));
  EXPECT_EQ(Bytes::fromGB(1.0), Bytes::fromMB(1000.0));
}

TEST(Bytes, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(Bytes{}.value(), 0.0);
}

TEST(Money, FactoriesAndArithmetic) {
  EXPECT_DOUBLE_EQ(Money::dollars(1.5).value(), 1.5);
  EXPECT_DOUBLE_EQ(Money::cents(56.0).value(), 0.56);
  EXPECT_DOUBLE_EQ(Money::zero().value(), 0.0);
  const Money a(2.0), b(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_LT(b, a);
}

TEST(Money, CompoundAssignment) {
  Money m(1.0);
  m += Money(0.25);
  m -= Money(0.05);
  m *= 2.0;
  m /= 4.0;
  EXPECT_DOUBLE_EQ(m.value(), 0.6);
}

TEST(TimeConstants, BillingCalendar) {
  EXPECT_DOUBLE_EQ(kSecondsPerHour, 3600.0);
  EXPECT_DOUBLE_EQ(kSecondsPerDay, 86400.0);
  // Amazon's GB-month convention: 30-day months.
  EXPECT_DOUBLE_EQ(kSecondsPerMonth, 2592000.0);
}

TEST(FormatMoney, ThousandsSeparatorsAndCents) {
  EXPECT_EQ(formatMoney(Money(0.56)), "$0.56");
  EXPECT_EQ(formatMoney(Money(34632.0)), "$34,632.00");
  EXPECT_EQ(formatMoney(Money(1800.0)), "$1,800.00");
  EXPECT_EQ(formatMoney(Money(1234567.891)), "$1,234,567.89");
}

TEST(FormatMoney, Negative) {
  EXPECT_EQ(formatMoney(Money(-42.5)), "$-42.50");
}

TEST(FormatBytes, UnitSelection) {
  EXPECT_EQ(formatBytes(Bytes(512.0)), "512 B");
  EXPECT_EQ(formatBytes(Bytes::fromKB(10.0)), "10.00 KB");
  EXPECT_EQ(formatBytes(Bytes::fromMB(173.46)), "173.46 MB");
  EXPECT_EQ(formatBytes(Bytes::fromGB(2.229)), "2.23 GB");
  EXPECT_EQ(formatBytes(Bytes::fromTB(12.0)), "12.00 TB");
}

TEST(FormatDuration, UnitSelection) {
  EXPECT_EQ(formatDuration(42.0), "42.0 s");
  EXPECT_EQ(formatDuration(18.0 * 60.0), "18.0 min");
  EXPECT_EQ(formatDuration(5.5 * 3600.0), "5.50 h");
  EXPECT_EQ(formatDuration(85.0 * 3600.0), "3.54 d");
}

}  // namespace
}  // namespace mcsim
