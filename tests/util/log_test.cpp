#include "mcsim/util/log.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

/// Restores the global threshold after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = logLevel(); }
  void TearDown() override { setLogLevel(saved_); }
  LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LogTest, ThresholdRoundTrips) {
  setLogLevel(LogLevel::Debug);
  EXPECT_EQ(logLevel(), LogLevel::Debug);
  setLogLevel(LogLevel::Off);
  EXPECT_EQ(logLevel(), LogLevel::Off);
}

TEST_F(LogTest, MessagesBelowThresholdDropped) {
  setLogLevel(LogLevel::Error);
  testing::internal::CaptureStderr();
  logf(LogLevel::Info, "quiet ", 42);
  logf(LogLevel::Error, "loud ", 7);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet"), std::string::npos);
  EXPECT_NE(err.find("loud 7"), std::string::npos);
  EXPECT_NE(err.find("[error]"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  setLogLevel(LogLevel::Off);
  testing::internal::CaptureStderr();
  logf(LogLevel::Error, "nothing");
  logMessage(LogLevel::Error, "nothing either");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, VariadicFormatting) {
  setLogLevel(LogLevel::Debug);
  testing::internal::CaptureStderr();
  logf(LogLevel::Debug, "ran ", 3, " tasks in ", 1.5, " s");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ran 3 tasks in 1.5 s"), std::string::npos);
  EXPECT_NE(err.find("[debug]"), std::string::npos);
}

}  // namespace
}  // namespace mcsim
