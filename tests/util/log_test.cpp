#include "mcsim/util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mcsim/obs/sink.hpp"

namespace mcsim {
namespace {

/// Restores the global threshold and sink after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = logLevel(); }
  void TearDown() override {
    setLogLevel(saved_);
    setLogSink(nullptr);
  }
  LogLevel saved_ = LogLevel::Warn;
};

/// Captures LogEmitted events routed through the bus.
class LogRecorder final : public obs::Sink {
 public:
  void onEvent(const obs::Event& event) override {
    if (const auto* log = std::get_if<obs::LogEmitted>(&event.payload))
      records.emplace_back(*log);
  }
  std::vector<obs::LogEmitted> records;
};

TEST_F(LogTest, ThresholdRoundTrips) {
  setLogLevel(LogLevel::Debug);
  EXPECT_EQ(logLevel(), LogLevel::Debug);
  setLogLevel(LogLevel::Off);
  EXPECT_EQ(logLevel(), LogLevel::Off);
}

TEST_F(LogTest, MessagesBelowThresholdDropped) {
  setLogLevel(LogLevel::Error);
  testing::internal::CaptureStderr();
  logf(LogLevel::Info, "quiet ", 42);
  logf(LogLevel::Error, "loud ", 7);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet"), std::string::npos);
  EXPECT_NE(err.find("loud 7"), std::string::npos);
  EXPECT_NE(err.find("[error]"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  setLogLevel(LogLevel::Off);
  testing::internal::CaptureStderr();
  logf(LogLevel::Error, "nothing");
  logMessage(LogLevel::Error, "nothing either");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, VariadicFormatting) {
  setLogLevel(LogLevel::Debug);
  testing::internal::CaptureStderr();
  logf(LogLevel::Debug, "ran ", 3, " tasks in ", 1.5, " s");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ran 3 tasks in 1.5 s"), std::string::npos);
  EXPECT_NE(err.find("[debug]"), std::string::npos);
}

TEST_F(LogTest, InstalledSinkReceivesMessagesInsteadOfStderr) {
  setLogLevel(LogLevel::Info);
  LogRecorder recorder;
  obs::Sink* previous = setLogSink(&recorder);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(logSink(), &recorder);

  testing::internal::CaptureStderr();
  logf(LogLevel::Warn, "queue depth ", 12);
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());

  ASSERT_EQ(recorder.records.size(), 1u);
  EXPECT_EQ(recorder.records[0].level, static_cast<int>(LogLevel::Warn));
  EXPECT_EQ(recorder.records[0].message, "queue depth 12");

  // Uninstalling restores stderr and hands back the old sink.
  EXPECT_EQ(setLogSink(nullptr), &recorder);
  testing::internal::CaptureStderr();
  logf(LogLevel::Warn, "back on stderr");
  EXPECT_NE(testing::internal::GetCapturedStderr().find("back on stderr"),
            std::string::npos);
}

TEST_F(LogTest, ThresholdStillAppliesWithSinkInstalled) {
  setLogLevel(LogLevel::Error);
  LogRecorder recorder;
  setLogSink(&recorder);
  logf(LogLevel::Debug, "dropped");
  logf(LogLevel::Info, "dropped too");
  logf(LogLevel::Error, "kept");
  ASSERT_EQ(recorder.records.size(), 1u);
  EXPECT_EQ(recorder.records[0].message, "kept");
}

/// Streaming this type counts how often it is actually formatted.
struct FormatCounter {
  mutable int* count;
};
std::ostream& operator<<(std::ostream& os, const FormatCounter& c) {
  ++*c.count;
  return os << "formatted";
}

TEST_F(LogTest, ArgumentsAreNotFormattedBelowThreshold) {
  setLogLevel(LogLevel::Error);
  int formatted = 0;
  testing::internal::CaptureStderr();
  logf(LogLevel::Debug, "expensive: ", FormatCounter{&formatted});
  EXPECT_EQ(formatted, 0);
  logf(LogLevel::Error, "expensive: ", FormatCounter{&formatted});
  EXPECT_EQ(formatted, 1);
  testing::internal::GetCapturedStderr();
}

}  // namespace
}  // namespace mcsim
