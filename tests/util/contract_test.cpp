// Contract-macro behaviour.  This translation unit force-enables contracts
// (MCSIM_ENABLE_CONTRACTS=1 on the test target) regardless of build type and
// swaps in a throwing failure handler, so violations are observable without
// death tests.
#include "mcsim/util/contract.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "mcsim/util/usage_curve.hpp"

namespace {

static_assert(MCSIM_ENABLE_CONTRACTS == 1,
              "contract_test must compile with contracts enabled");

/// Thrown by the test handler instead of aborting.
struct ContractViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwingHandler(const mcsim::contract::Violation& v) {
  throw ContractViolation(std::string(v.kind) + ": " + v.condition +
                          (v.message.empty() ? "" : " — " + v.message));
}

class ContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = mcsim::contract::setContractFailureHandler(&throwingHandler);
  }
  void TearDown() override {
    mcsim::contract::setContractFailureHandler(previous_);
  }
  mcsim::contract::Handler previous_ = nullptr;
};

TEST_F(ContractTest, PassingChecksAreSilent) {
  MCSIM_ASSERT(1 + 1 == 2);
  MCSIM_EXPECTS(true, "never evaluated");
  MCSIM_ENSURES(2 > 1);
}

TEST_F(ContractTest, FailingAssertReachesHandler) {
  EXPECT_THROW(MCSIM_ASSERT(false), ContractViolation);
}

TEST_F(ContractTest, ViolationCarriesKindConditionAndMessage) {
  const int heapPos = 7;
  try {
    MCSIM_EXPECTS(heapPos < 3, "slot ", 42, " out of range");
    FAIL() << "expected a ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expects"), std::string::npos);
    EXPECT_NE(what.find("heapPos < 3"), std::string::npos);
    EXPECT_NE(what.find("slot 42 out of range"), std::string::npos);
  }
}

TEST_F(ContractTest, MessageIsOptional) {
  try {
    MCSIM_ENSURES(false);
    FAIL() << "expected a ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ensures"), std::string::npos);
  }
}

TEST_F(ContractTest, HandlerSwapRestoresPrevious) {
  auto* mine = mcsim::contract::setContractFailureHandler(nullptr);
  EXPECT_EQ(mine, &throwingHandler);
  auto* back = mcsim::contract::setContractFailureHandler(mine);
  EXPECT_EQ(back, nullptr);
  EXPECT_THROW(MCSIM_ASSERT(false), ContractViolation);
}

TEST_F(ContractTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  MCSIM_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

// The library in this test binary may be a Release build (contracts compiled
// out of mcsim.a), so library-side invariants are exercised against an
// inline-compiled component instead: UsageCurve is header-declared but its
// checks live in usage_curve.cpp.  Guard accordingly: run the library-side
// test only when the UsageCurve TU itself was built with contracts (the
// Debug / -DMCSIM_CONTRACTS=ON CI job).
TEST_F(ContractTest, UsageCurveRejectsNonFiniteInput) {
  mcsim::UsageCurve curve;
  const mcsim::Bytes nan(std::numeric_limits<double>::quiet_NaN());
#if defined(MCSIM_LIBRARY_HAS_CONTRACTS)
  EXPECT_THROW(curve.add(0.0, nan), ContractViolation);
#else
  // Contracts compiled out of the library: the call must pass through.
  curve.add(0.0, nan);
  SUCCEED();
#endif
}

}  // namespace
