#include "mcsim/util/args.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

ArgParser parser() {
  return ArgParser({"procs", "mode", "rate"}, {"csv", "verbose"});
}

void parse(ArgParser& p, std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  p.parse(static_cast<int>(v.size()), v.data());
}

TEST(Args, SpaceSeparatedValues) {
  auto p = parser();
  parse(p, {"--procs", "8", "--mode", "cleanup"});
  EXPECT_EQ(p.valueOr("procs", ""), "8");
  EXPECT_EQ(p.valueOr("mode", ""), "cleanup");
  EXPECT_EQ(p.intOr("procs", 0), 8);
}

TEST(Args, EqualsSyntax) {
  auto p = parser();
  parse(p, {"--procs=16", "--rate=2.5"});
  EXPECT_EQ(p.intOr("procs", 0), 16);
  EXPECT_DOUBLE_EQ(p.numberOr("rate", 0.0), 2.5);
}

TEST(Args, Flags) {
  auto p = parser();
  parse(p, {"--csv"});
  EXPECT_TRUE(p.hasFlag("csv"));
  EXPECT_FALSE(p.hasFlag("verbose"));
}

TEST(Args, Positional) {
  auto p = parser();
  parse(p, {"input.dax", "--csv", "more"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.dax", "more"}));
}

TEST(Args, DefaultsWhenAbsent) {
  auto p = parser();
  parse(p, {});
  EXPECT_EQ(p.valueOr("mode", "regular"), "regular");
  EXPECT_EQ(p.intOr("procs", 4), 4);
  EXPECT_DOUBLE_EQ(p.numberOr("rate", 1.5), 1.5);
  EXPECT_FALSE(p.value("mode").has_value());
}

TEST(Args, UnknownOptionRejected) {
  auto p = parser();
  EXPECT_THROW(parse(p, {"--bogus", "1"}), std::invalid_argument);
}

TEST(Args, MissingValueRejected) {
  auto p = parser();
  EXPECT_THROW(parse(p, {"--procs"}), std::invalid_argument);
}

TEST(Args, DuplicateRejected) {
  auto p = parser();
  EXPECT_THROW(parse(p, {"--procs", "1", "--procs", "2"}),
               std::invalid_argument);
  auto q = parser();
  EXPECT_THROW(parse(q, {"--csv", "--csv"}), std::invalid_argument);
}

TEST(Args, FlagWithValueRejected) {
  auto p = parser();
  EXPECT_THROW(parse(p, {"--csv=yes"}), std::invalid_argument);
}

TEST(Args, BadNumbersRejected) {
  auto p = parser();
  parse(p, {"--procs", "eight", "--rate", "fast"});
  EXPECT_THROW(p.intOr("procs", 0), std::invalid_argument);
  EXPECT_THROW(p.numberOr("rate", 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
