#include "mcsim/util/usage_curve.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

TEST(UsageCurve, EmptyCurve) {
  UsageCurve c;
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.current().value(), 0.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 0.0);
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(100.0), 0.0);
}

TEST(UsageCurve, SingleRectangle) {
  UsageCurve c;
  c.add(10.0, Bytes(100.0));
  c.remove(30.0, Bytes(100.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(), 100.0 * 20.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 100.0);
  EXPECT_DOUBLE_EQ(c.current().value(), 0.0);
}

TEST(UsageCurve, AreaIsPaperGbHourMetric) {
  // 1 GB resident for 2 hours = 2 GB-hours.
  UsageCurve c;
  c.add(0.0, Bytes::fromGB(1.0));
  c.remove(2.0 * kSecondsPerHour, Bytes::fromGB(1.0));
  EXPECT_NEAR(c.integralGBHours(2.0 * kSecondsPerHour), 2.0, 1e-12);
}

TEST(UsageCurve, StackedLevels) {
  UsageCurve c;
  c.add(0.0, Bytes(10.0));
  c.add(5.0, Bytes(20.0));   // level 30
  c.remove(10.0, Bytes(10.0));  // level 20
  c.remove(20.0, Bytes(20.0));  // level 0
  // 10*5 + 30*5 + 20*10 = 400
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(), 400.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 30.0);
}

TEST(UsageCurve, TruncationAtHorizon) {
  UsageCurve c;
  c.add(0.0, Bytes(10.0));
  c.remove(100.0, Bytes(10.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(40.0), 400.0);
  // Horizon beyond the last event: the level is zero afterwards.
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(200.0), 1000.0);
}

TEST(UsageCurve, LevelPersistsToHorizonWhenNeverReleased) {
  UsageCurve c;
  c.add(10.0, Bytes(5.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(110.0), 5.0 * 100.0);
  EXPECT_DOUBLE_EQ(c.current().value(), 5.0);
}

TEST(UsageCurve, OutOfOrderEventsAreSorted) {
  UsageCurve c;
  c.remove(30.0, Bytes(100.0));
  c.add(10.0, Bytes(100.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(30.0), 2000.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 100.0);
  const auto events = c.sortedEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 10.0);
  EXPECT_DOUBLE_EQ(events[1].time, 30.0);
}

TEST(UsageCurve, SimultaneousEvents) {
  UsageCurve c;
  c.add(0.0, Bytes(10.0));
  c.remove(5.0, Bytes(10.0));
  c.add(5.0, Bytes(20.0));  // swap at the same instant
  c.remove(10.0, Bytes(20.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(10.0), 10.0 * 5.0 + 20.0 * 5.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 20.0);
}

TEST(UsageCurve, EventsAfterHorizonIgnored) {
  UsageCurve c;
  c.add(0.0, Bytes(10.0));
  c.add(50.0, Bytes(90.0));
  EXPECT_DOUBLE_EQ(c.integralByteSeconds(20.0), 200.0);
  EXPECT_DOUBLE_EQ(c.peak().value(), 100.0);  // peak looks at all events
}

TEST(UsageCurve, EventCountTracksRecording) {
  UsageCurve c;
  for (int i = 0; i < 5; ++i) c.add(i, Bytes(1.0));
  EXPECT_EQ(c.eventCount(), 5u);
  EXPECT_FALSE(c.empty());
  EXPECT_DOUBLE_EQ(c.current().value(), 5.0);
}

}  // namespace
}  // namespace mcsim
