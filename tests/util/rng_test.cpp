#include "mcsim/util/rng.hpp"

#include <gtest/gtest.h>

namespace mcsim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 32 && !differed; ++i)
    differed = a.uniformInt(0, 1 << 30) != b.uniformInt(0, 1 << 30);
  EXPECT_TRUE(differed);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    sawLo = sawLo || v == 3;
    sawHi = sawHi || v == 5;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SeedAccessor) {
  EXPECT_EQ(Rng(99).seed(), 99u);
}

}  // namespace
}  // namespace mcsim
