#include "mcsim/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mcsim {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "cost"});
  t.addRow({"alpha", "$1.00"});
  t.addRow({"b", "$123.45"});
  const std::string out = t.toString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("$123.45"), std::string::npos);
}

TEST(Table, DefaultAlignmentLeftLabelRightNumbers) {
  Table t({"k", "value"});
  t.addRow({"x", "1"});
  const std::string out = t.toString();
  // "value" is 5 wide; "1" must be right-aligned: "    1".
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(Table, ExplicitAlignment) {
  Table t({"a", "b"}, {Align::Right, Align::Left});
  t.addRow({"1", "xy"});
  const std::string out = t.toString();
  // Column "a" is 1 wide; "1" at column start; "xy" left-aligned after gutter.
  EXPECT_EQ(out.find("1  xy"), out.rfind("1  xy"));
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, AlignArityChecked) {
  EXPECT_THROW(Table({"a", "b"}, {Align::Left}), std::invalid_argument);
}

TEST(Table, CountsExposed) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columnCount(), 3u);
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"1", "2", "3"});
  EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, PrintToStream) {
  Table t({"h"});
  t.addRow({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.toString());
}

TEST(SectionBanner, WrapsTitle) {
  EXPECT_EQ(sectionBanner("Fig 4"), "\n== Fig 4 ==\n");
}

}  // namespace
}  // namespace mcsim
