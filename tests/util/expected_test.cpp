// mcsim::Expected — the throw-free error channel used by try-style
// builders (trySurveyCampaign): value/error duality, wrong-side access
// contracts, move behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "mcsim/util/expected.hpp"

namespace mcsim {
namespace {

Expected<int> parsePositive(int v) {
  if (v <= 0) return makeUnexpected("not positive: " + std::to_string(v));
  return v;
}

TEST(ExpectedTest, ValueSideBehavesLikeTheValue) {
  const Expected<int> ok = parsePositive(7);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(ok.hasValue());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);
}

TEST(ExpectedTest, ErrorSideCarriesTheMessage) {
  const Expected<int> bad = parsePositive(-3);
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error(), "not positive: -3");
}

TEST(ExpectedTest, WrongSideAccessThrowsLogicError) {
  const Expected<int> ok = parsePositive(1);
  const Expected<int> bad = parsePositive(0);
  EXPECT_THROW((void)ok.error(), std::logic_error);
  EXPECT_THROW((void)bad.value(), std::logic_error);
  EXPECT_THROW((void)*bad, std::logic_error);
}

TEST(ExpectedTest, ArrowOperatorReachesMembers) {
  const Expected<std::string> ok{std::string("abc")};
  EXPECT_EQ(ok->size(), 3u);
}

TEST(ExpectedTest, MoveOnlyValuesMoveOut) {
  Expected<std::unique_ptr<int>> ok{std::make_unique<int>(42)};
  ASSERT_TRUE(ok);
  const std::unique_ptr<int> moved = std::move(ok).value();
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(*moved, 42);
}

TEST(ExpectedTest, CustomErrorTypes) {
  const Expected<int, int> bad = makeUnexpected(404);
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error(), 404);
}

}  // namespace
}  // namespace mcsim
