#include "mcsim/analysis/planner.hpp"

#include <gtest/gtest.h>

#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

TEST(Planner, UnconstrainedGoalPicksCheapest) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const Recommendation rec =
      recommendProvisioning(wf, kAmazon, PlannerGoal{},
                            ProvisioningSweepConfig{.processorCounts = {1, 8, 64}});
  ASSERT_TRUE(rec.feasible);
  // Total cost rises with P (Question 1), so 1 processor is cheapest.
  EXPECT_EQ(rec.choice.processors, 1);
}

TEST(Planner, DeadlineForcesMoreProcessors) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  PlannerGoal goal;
  goal.deadlineSeconds = 1.0 * kSecondsPerHour;  // serial needs ~5.7 h
  const Recommendation rec =
      recommendProvisioning(wf, kAmazon, goal,
                            ProvisioningSweepConfig{.processorCounts = {1, 8, 16, 64}});
  ASSERT_TRUE(rec.feasible);
  EXPECT_GT(rec.choice.processors, 1);
  EXPECT_LE(rec.choice.makespanSeconds, goal.deadlineSeconds);
  // It should still pick the *cheapest* deadline-meeting option, not the
  // fastest.
  EXPECT_LT(rec.choice.processors, 64);
}

TEST(Planner, ImpossibleDeadlineReportedInfeasible) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  PlannerGoal goal;
  goal.deadlineSeconds = 10.0;  // ten seconds: hopeless
  const Recommendation rec = recommendProvisioning(
      wf, kAmazon, goal, ProvisioningSweepConfig{.processorCounts = {1, 8}});
  EXPECT_FALSE(rec.feasible);
  EXPECT_FALSE(rec.rationale.empty());
  // The closest point (fastest) is surfaced.
  EXPECT_EQ(rec.choice.processors, 8);
}

TEST(Planner, TightBudgetReportedInfeasible) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  PlannerGoal goal;
  goal.budget = Money(0.01);
  const Recommendation rec = recommendProvisioning(
      wf, kAmazon, goal, ProvisioningSweepConfig{.processorCounts = {1, 8}});
  EXPECT_FALSE(rec.feasible);
}

TEST(Planner, DefaultLadderUsedWhenEmpty) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const Recommendation rec =
      recommendProvisioning(wf, kAmazon, PlannerGoal{});
  EXPECT_TRUE(rec.feasible);
  EXPECT_FALSE(rec.frontier.empty());
}

TEST(Planner, FrontierIsPareto) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const Recommendation rec =
      recommendProvisioning(wf, kAmazon, PlannerGoal{},
                            ProvisioningSweepConfig{.processorCounts = {1, 2, 4, 8, 16}});
  // Sorted by makespan descending cost: no point dominates another.
  for (std::size_t i = 0; i < rec.frontier.size(); ++i) {
    for (std::size_t j = 0; j < rec.frontier.size(); ++j) {
      if (i == j) continue;
      const bool dominates =
          rec.frontier[j].makespanSeconds <= rec.frontier[i].makespanSeconds &&
          rec.frontier[j].totalCost < rec.frontier[i].totalCost;
      EXPECT_FALSE(dominates) << j << " dominates " << i;
    }
  }
}

TEST(ParetoFrontier, DominatedPointsDropped) {
  ProvisioningPoint fast;
  fast.processors = 8;
  fast.makespanSeconds = 100.0;
  fast.totalCost = Money(10.0);
  ProvisioningPoint cheap;
  cheap.processors = 1;
  cheap.makespanSeconds = 800.0;
  cheap.totalCost = Money(2.0);
  ProvisioningPoint dominated;  // slower AND pricier than `fast`
  dominated.processors = 4;
  dominated.makespanSeconds = 200.0;
  dominated.totalCost = Money(12.0);
  const auto frontier = paretoFrontier({fast, cheap, dominated});
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].processors, 8);
  EXPECT_EQ(frontier[1].processors, 1);
}

TEST(ParetoFrontier, EmptyInput) {
  EXPECT_TRUE(paretoFrontier({}).empty());
}

}  // namespace
}  // namespace mcsim::analysis
