// Cross-validation of the analytic cost model against the simulator: the
// proven bounds must bracket every simulated Regular-mode run, on Montage,
// the gallery and random DAGs.
#include "mcsim/analysis/model.hpp"

#include <gtest/gtest.h>

#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

void expectBracketsSimulation(const dag::Workflow& wf, int processors) {
  const AnalyticEstimate est =
      estimateRegularRun(wf, processors, kAmazon);
  engine::EngineConfig cfg;
  cfg.processors = processors;
  cfg.mode = engine::DataMode::Regular;
  const auto sim = engine::simulateWorkflow(wf, cfg);

  EXPECT_LE(est.makespanLowerSeconds, sim.makespanSeconds + 1e-6)
      << wf.name() << " P=" << processors;
  EXPECT_GE(est.makespanUpperSeconds, sim.makespanSeconds - 1e-6)
      << wf.name() << " P=" << processors;
  EXPECT_NEAR(est.bytesIn.value(), sim.bytesIn.value(), 1.0);
  EXPECT_NEAR(est.bytesOut.value(), sim.bytesOut.value(), 1.0);
  EXPECT_NEAR(est.cpuUsage.value(),
              kAmazon.cpuCost(sim.cpuBusySeconds).value(), 1e-9);
  EXPECT_GE(est.storageUpperBound.value(),
            kAmazon.storageCost(sim.storageByteSeconds).value() - 1e-12);
}

TEST(AnalyticModel, BracketsMontagePresets) {
  for (double deg : {1.0, 2.0}) {
    const auto wf = montage::buildMontageWorkflow(deg);
    for (int p : {1, 8, 64}) expectBracketsSimulation(wf, p);
  }
}

TEST(AnalyticModel, BracketsGalleryWorkflows) {
  for (const dag::Workflow& wf : workflows::buildGallery())
    for (int p : {1, 16}) expectBracketsSimulation(wf, p);
}

TEST(AnalyticModel, BracketsRandomDags) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    const auto wf = dag::makeRandomWorkflow(seed);
    for (int p : {1, 4}) expectBracketsSimulation(wf, p);
  }
}

TEST(AnalyticModel, EstimateCloseToSimulationOnMontage) {
  // The point estimate should be useful, not just a bound: within 25% of
  // the simulated makespan across the ladder.
  const auto wf = montage::buildMontageWorkflow(1.0);
  for (int p : {1, 4, 16, 64}) {
    const AnalyticEstimate est = estimateRegularRun(wf, p, kAmazon);
    engine::EngineConfig cfg;
    cfg.processors = p;
    const auto sim = engine::simulateWorkflow(wf, cfg);
    EXPECT_NEAR(est.makespanEstimateSeconds, sim.makespanSeconds,
                0.25 * sim.makespanSeconds)
        << p << " procs";
  }
}

TEST(AnalyticModel, TransferCostExactForRegularMode) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const AnalyticEstimate est = estimateRegularRun(wf, 8, kAmazon);
  engine::EngineConfig cfg;
  cfg.processors = 8;
  const auto sim = engine::simulateWorkflow(wf, cfg);
  const auto cost =
      engine::computeCost(sim, kAmazon, cloud::CpuBillingMode::Usage);
  EXPECT_NEAR(est.transferCost.value(), cost.transfer().value(), 1e-9);
}

TEST(AnalyticModel, SerialEstimateNearlyExact) {
  // At P=1 the compute phase is exactly the total work, so the estimate
  // should land within the stage-in overlap slack.
  const auto wf = montage::buildMontageWorkflow(2.0);
  const AnalyticEstimate est = estimateRegularRun(wf, 1, kAmazon);
  engine::EngineConfig cfg;
  cfg.processors = 1;
  const auto sim = engine::simulateWorkflow(wf, cfg);
  EXPECT_NEAR(est.makespanEstimateSeconds, sim.makespanSeconds,
              0.02 * sim.makespanSeconds);
}

TEST(AnalyticModel, InvalidArgumentsRejected) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  EXPECT_THROW(estimateRegularRun(wf, 0, kAmazon), std::invalid_argument);
  EXPECT_THROW(estimateRegularRun(wf, 4, kAmazon, 0.0), std::invalid_argument);
}

TEST(AnalyticModel, EmptyWorkflow) {
  dag::Workflow wf("empty");
  wf.finalize();
  const AnalyticEstimate est = estimateRegularRun(wf, 4, kAmazon);
  EXPECT_DOUBLE_EQ(est.makespanLowerSeconds, 0.0);
  EXPECT_DOUBLE_EQ(est.cpuUsage.value(), 0.0);
}

}  // namespace
}  // namespace mcsim::analysis
