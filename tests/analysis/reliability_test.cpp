// The reliability experiment: structure, determinism and the cost ordering
// the paper's §8 concern implies — unreliable processors never make a run
// cheaper.
#include "mcsim/analysis/reliability.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

ReliabilityConfig smallSweep() {
  ReliabilityConfig rc;
  rc.mtbfSeconds = {7200.0, 1800.0};
  rc.retry.maxRetries = 20;
  rc.retry.delaySeconds = 5.0;
  rc.faultSeed = 11;
  rc.processorOverride = 8;
  return rc;
}

TEST(ReliabilitySweep, CoversAllModesWithBaselines) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  const auto points =
      reliabilitySweep(wf, cloud::Pricing::amazon2008(), smallSweep());
  ASSERT_EQ(points.size(), 9u);  // 3 modes x (baseline + 2 MTBF values)

  for (std::size_t i = 0; i < points.size(); i += 3) {
    const ReliabilityPoint& base = points[i];
    EXPECT_DOUBLE_EQ(base.mtbfSeconds, 0.0);
    EXPECT_EQ(base.processorCrashes, 0u);
    EXPECT_TRUE(base.completed);
    EXPECT_DOUBLE_EQ(base.faultFreeTotal.value(), base.totalCost.value());
    for (std::size_t j = i + 1; j < i + 3; ++j) {
      EXPECT_EQ(points[j].mode, base.mode);
      EXPECT_GT(points[j].mtbfSeconds, 0.0);
      // Faults never make the run cheaper: waste is billed, remote retries
      // re-stage, and survivors keep their storage longer.
      EXPECT_GE(points[j].totalCost.value(), base.totalCost.value() - 1e-9);
      EXPECT_GE(points[j].costOverheadFraction(), -1e-9);
    }
  }
  // The harsher MTBF crashes at least as often as the gentler one.
  EXPECT_GE(points[2].processorCrashes, points[1].processorCrashes);
}

TEST(ReliabilitySweep, IsDeterministic) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  const auto a =
      reliabilitySweep(wf, cloud::Pricing::amazon2008(), smallSweep());
  const auto b =
      reliabilitySweep(wf, cloud::Pricing::amazon2008(), smallSweep());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].totalCost.value(), b[i].totalCost.value());
    EXPECT_EQ(a[i].processorCrashes, b[i].processorCrashes);
    EXPECT_DOUBLE_EQ(a[i].makespanSeconds, b[i].makespanSeconds);
  }
}

TEST(ReliabilitySweep, RejectsNonPositiveMtbf) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  ReliabilityConfig rc = smallSweep();
  rc.mtbfSeconds = {0.0};
  EXPECT_THROW(reliabilitySweep(wf, cloud::Pricing::amazon2008(), rc),
               std::invalid_argument);
}

TEST(ReliabilityTable, RendersOneRowPerPoint) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  const auto points =
      reliabilitySweep(wf, cloud::Pricing::amazon2008(), smallSweep());
  std::ostringstream os;
  reliabilityTable(points).print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("remote-io"), std::string::npos);
  EXPECT_NE(text.find("cleanup"), std::string::npos);
  EXPECT_NE(text.find("overhead"), std::string::npos);
}

}  // namespace
}  // namespace mcsim::analysis
