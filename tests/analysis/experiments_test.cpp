#include "mcsim/analysis/experiments.hpp"

#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

engine::EngineConfig fastLink() {
  engine::EngineConfig cfg;
  cfg.linkBandwidthBytesPerSec = 1e6;
  return cfg;
}

TEST(DefaultLadder, GeometricOneTo128) {
  EXPECT_EQ(defaultProcessorLadder(),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128}));
}

TEST(ProvisioningSweep, OnePointPerProcessorCount) {
  const auto fig = test::makeFigure3Workflow();
  const auto points = provisioningSweep(
      fig.wf, kAmazon, {.processorCounts = {1, 2, 4}, .base = fastLink()});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].processors, 1);
  EXPECT_EQ(points[2].processors, 4);
}

TEST(ProvisioningSweep, CostsDecomposeAndTotalIsPapersDefinition) {
  const auto fig = test::makeFigure3Workflow();
  const auto points = provisioningSweep(
      fig.wf, kAmazon, {.processorCounts = {2}, .base = fastLink()});
  const ProvisioningPoint& p = points[0];
  EXPECT_NEAR(p.totalCost.value(),
              (p.cpuCost + p.storageCost + p.transferCost).value(), 1e-12);
  EXPECT_LE(p.storageCleanupCost, p.storageCost);
  EXPECT_GT(p.cpuCost.value(), 0.0);
}

TEST(ProvisioningSweep, CpuCostIsProcessorsTimesMakespan) {
  const auto fig = test::makeFigure3Workflow();
  const auto points = provisioningSweep(
      fig.wf, kAmazon, {.processorCounts = {1, 4}, .base = fastLink()});
  for (const ProvisioningPoint& p : points) {
    EXPECT_NEAR(p.cpuCost.value(),
                p.processors * p.makespanSeconds * 0.10 / 3600.0, 1e-12);
  }
}

TEST(ProvisioningSweep, TransferCostInvariantAcrossP) {
  // Paper Fig 4: "The data transfer costs are independent of the number of
  // processors provisioned."
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto points =
      provisioningSweep(wf, kAmazon, {.processorCounts = {1, 8, 64}});
  EXPECT_NEAR(points[0].transferCost.value(), points[1].transferCost.value(),
              1e-12);
  EXPECT_NEAR(points[1].transferCost.value(), points[2].transferCost.value(),
              1e-12);
}

TEST(ProvisioningSweep, StorageDeclinesCpuRisesWithP) {
  // Paper Fig 4: "As the number of processors is increased, the storage
  // costs decline but the CPU costs increase."
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto points =
      provisioningSweep(wf, kAmazon, {.processorCounts = {1, 8, 64}});
  EXPECT_GT(points[0].storageCost, points[1].storageCost);
  EXPECT_GT(points[1].storageCost, points[2].storageCost);
  EXPECT_LT(points[0].cpuCost, points[1].cpuCost);
  EXPECT_LT(points[1].cpuCost, points[2].cpuCost);
}

TEST(ProvisioningSweep, HourlyGranularityNeverCheaper) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto perSecond = provisioningSweep(
      wf, kAmazon,
      {.processorCounts = {3},
       .granularity = cloud::BillingGranularity::PerSecond});
  const auto perHour = provisioningSweep(
      wf, kAmazon,
      {.processorCounts = {3},
       .granularity = cloud::BillingGranularity::PerHour});
  EXPECT_GE(perHour[0].cpuCost, perSecond[0].cpuCost);
}

TEST(DataModeComparison, ThreeRowsInPaperOrder) {
  const auto fig = test::makeFigure3Workflow();
  const auto rows = dataModeComparison(fig.wf, kAmazon, {.base = fastLink()});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].mode, engine::DataMode::RemoteIO);
  EXPECT_EQ(rows[1].mode, engine::DataMode::Regular);
  EXPECT_EQ(rows[2].mode, engine::DataMode::DynamicCleanup);
}

TEST(DataModeComparison, CpuCostInvariantAndUsageBilled) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
  // Usage billing: Σ runtimes x $0.1/h = $0.56 in every mode (Fig 10).
  for (const DataModeMetrics& r : rows)
    EXPECT_NEAR(r.cpuCost.value(), 0.56, 1e-9);
}

TEST(DataModeComparison, MontageOrderings) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
  const auto& remote = rows[0];
  const auto& regular = rows[1];
  const auto& cleanup = rows[2];
  // Fig 7: storage remote < cleanup < regular; transfers remote highest,
  // regular == cleanup; total remote highest, cleanup lowest.
  EXPECT_LT(remote.storageGBHours, cleanup.storageGBHours);
  EXPECT_LT(cleanup.storageGBHours, regular.storageGBHours);
  EXPECT_GT(remote.bytesIn, regular.bytesIn);
  EXPECT_DOUBLE_EQ(regular.bytesIn.value(), cleanup.bytesIn.value());
  EXPECT_GT(remote.totalCost(), regular.totalCost());
  EXPECT_LE(cleanup.totalCost(), regular.totalCost());
}

TEST(DataModeComparison, ProcessorOverrideRespected) {
  const auto fig = test::makeFigure3Workflow();
  const auto rows = dataModeComparison(
      fig.wf, kAmazon, {.base = fastLink(), .processorOverride = 2});
  // Regular-mode makespan with P=2 differs from full parallelism (P=3).
  const auto wide = dataModeComparison(fig.wf, kAmazon, {.base = fastLink()});
  EXPECT_GT(rows[1].makespanSeconds, wide[1].makespanSeconds);
}

TEST(CcrSweep, HitsRequestedCcrs) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto points =
      ccrSweep(wf, kAmazon, {.ccrTargets = {0.053, 0.5, 2.0}});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].ccr, 0.053);
  EXPECT_DOUBLE_EQ(points[2].ccr, 2.0);
}

TEST(CcrSweep, EverythingRisesWithCcr) {
  // Paper Fig 11: storage, transfer, CPU (longer stage-in) and total all
  // increase with CCR.
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto points =
      ccrSweep(wf, kAmazon, {.ccrTargets = {0.053, 0.5, 2.0, 8.0}});
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].storageCost, points[i - 1].storageCost) << i;
    EXPECT_GT(points[i].transferCost, points[i - 1].transferCost) << i;
    EXPECT_GT(points[i].makespanSeconds, points[i - 1].makespanSeconds) << i;
    EXPECT_GT(points[i].cpuCost, points[i - 1].cpuCost) << i;
    EXPECT_GT(points[i].totalCost, points[i - 1].totalCost) << i;
  }
}

TEST(CcrSweep, CleanupStorageBelowRegular) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto points = ccrSweep(wf, kAmazon, {.ccrTargets = {1.0}});
  EXPECT_LT(points[0].storageCleanupCost, points[0].storageCost);
}

TEST(CcrSweep, SourceWorkflowNotMutated) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const double before = wf.ccr(montage::kReferenceBandwidthBytesPerSec);
  ccrSweep(wf, kAmazon, {.ccrTargets = {5.0}});
  EXPECT_DOUBLE_EQ(wf.ccr(montage::kReferenceBandwidthBytesPerSec), before);
}

TEST(CcrSweep, InvalidProcessorsRejected) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  EXPECT_THROW(ccrSweep(wf, kAmazon, {.ccrTargets = {1.0}, .processors = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::analysis
