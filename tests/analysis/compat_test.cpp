// Compatibility coverage for the deprecated positional sweep signatures:
// each wrapper must keep returning exactly what the config-struct overload
// returns until the wrappers are removed.  This file is the one place that
// intentionally calls them, so the deprecation warnings are silenced here.
#include <gtest/gtest.h>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/analysis/planner.hpp"
#include "mcsim/analysis/reliability.hpp"
#include "mcsim/montage/factory.hpp"

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

TEST(DeprecatedWrappers, ProvisioningSweepMatchesConfigOverload) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto legacy = provisioningSweep(wf, {1, 4}, kAmazon, {},
                                        cloud::BillingGranularity::PerHour);
  const auto current = provisioningSweep(
      wf, kAmazon,
      {.processorCounts = {1, 4},
       .granularity = cloud::BillingGranularity::PerHour});
  ASSERT_EQ(legacy.size(), current.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].processors, current[i].processors);
    EXPECT_EQ(legacy[i].makespanSeconds, current[i].makespanSeconds);
    EXPECT_EQ(legacy[i].totalCost.value(), current[i].totalCost.value());
  }
}

TEST(DeprecatedWrappers, DataModeComparisonMatchesConfigOverload) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto legacy = dataModeComparison(wf, kAmazon, {}, 4);
  const auto current =
      dataModeComparison(wf, kAmazon, {.processorOverride = 4});
  ASSERT_EQ(legacy.size(), current.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].mode, current[i].mode);
    EXPECT_EQ(legacy[i].makespanSeconds, current[i].makespanSeconds);
    EXPECT_EQ(legacy[i].totalCost().value(), current[i].totalCost().value());
  }
}

TEST(DeprecatedWrappers, CcrSweepMatchesConfigOverload) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto legacy = ccrSweep(wf, {0.2, 1.0}, 4, kAmazon);
  const auto current =
      ccrSweep(wf, kAmazon, {.ccrTargets = {0.2, 1.0}, .processors = 4});
  ASSERT_EQ(legacy.size(), current.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].ccr, current[i].ccr);
    EXPECT_EQ(legacy[i].makespanSeconds, current[i].makespanSeconds);
    EXPECT_EQ(legacy[i].totalCost.value(), current[i].totalCost.value());
  }
}

TEST(DeprecatedWrappers, ReliabilitySweepMatchesConfigOverload) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  ReliabilityConfig rc;
  rc.mtbfSeconds = {600.0};

  engine::EngineConfig base;
  base.linkBandwidthBytesPerSec = 2e6;
  const auto legacy = reliabilitySweep(wf, kAmazon, rc, base);

  ReliabilityConfig merged = rc;
  merged.base = base;
  const auto current = reliabilitySweep(wf, kAmazon, merged);
  ASSERT_EQ(legacy.size(), current.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].makespanSeconds, current[i].makespanSeconds);
    EXPECT_EQ(legacy[i].totalCost.value(), current[i].totalCost.value());
  }
}

TEST(DeprecatedWrappers, RecommendProvisioningMatchesConfigOverload) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto legacy =
      recommendProvisioning(wf, kAmazon, PlannerGoal{}, {1, 4});
  const auto current = recommendProvisioning(
      wf, kAmazon, PlannerGoal{},
      ProvisioningSweepConfig{.processorCounts = {1, 4}});
  EXPECT_EQ(legacy.feasible, current.feasible);
  EXPECT_EQ(legacy.choice.processors, current.choice.processors);
  EXPECT_EQ(legacy.rationale, current.rationale);
}

}  // namespace
}  // namespace mcsim::analysis
