// The placement optimizer: Q2a anchors, agreement with dataModeComparison,
// and the search-space invariants (spot, archive hosting, Pareto frontier).
#include "mcsim/analysis/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/runner/memo.hpp"

namespace mcsim::analysis {
namespace {

const cloud::ProviderCatalog& kCatalog = cloud::ProviderCatalog::builtin();

/// Candidates restricted to the legacy placement (defaults everywhere) for
/// one provider: best candidate per mode must agree with the sweep.
std::map<engine::DataMode, PlacementCandidate> bestPerMode(
    const OptimizeResult& result, const std::string& provider) {
  std::map<engine::DataMode, PlacementCandidate> best;
  for (const PlacementCandidate& c : result.ranked) {
    if (c.assignment.computeProvider != provider) continue;
    if (!best.count(c.mode)) best.emplace(c.mode, c);
  }
  return best;
}

// §6 Q2a anchor, amazon-2008: the optimizer reproduces the paper's original
// data-mode ordering — remote I/O costs the most, dynamic cleanup the least.
TEST(OptimizePlacement, Q2aAmazon2008PaperOrdering) {
  const auto wf = montage::buildMontageWorkflow(4.0);
  OptimizeConfig config;
  config.providers = {"amazon-2008"};
  // Fixed provisioning (the default ladder's top rung): at the 4-degree
  // mosaic's full parallelism the intermediates barely rest in storage and
  // the storage term degenerates.
  config.processorOverride = 128;
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  ASSERT_EQ(result.candidates, 3u);  // 1 SKU x 1 class x 3 modes.
  EXPECT_EQ(result.simulations, 3u);

  const auto best = bestPerMode(result, "amazon-2008");
  const Money remote = best.at(engine::DataMode::RemoteIO).cost.total();
  const Money regular = best.at(engine::DataMode::Regular).cost.total();
  const Money cleanup = best.at(engine::DataMode::DynamicCleanup).cost.total();
  EXPECT_GT(remote, regular);
  EXPECT_LE(cleanup, regular);
  // The global winner is therefore the cleanup candidate.
  EXPECT_EQ(result.best().mode, engine::DataMode::DynamicCleanup);
  EXPECT_EQ(result.best().assignment.computeProvider, "amazon-2008");
}

// §6 Q2a anchor, storage-heavy what-if: "if the storage costs were higher,
// the remote I/O case would have provided the most cost-effective option."
TEST(OptimizePlacement, Q2aStorageHeavyFlipsToRemoteIO) {
  const auto wf = montage::buildMontageWorkflow(4.0);
  OptimizeConfig config;
  config.providers = {"storage-heavy"};
  config.processorOverride = 128;  // Same provisioning as the amazon anchor.
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  const auto best = bestPerMode(result, "storage-heavy");
  const Money remote = best.at(engine::DataMode::RemoteIO).cost.total();
  const Money regular = best.at(engine::DataMode::Regular).cost.total();
  const Money cleanup = best.at(engine::DataMode::DynamicCleanup).cost.total();
  EXPECT_LT(remote, regular);
  EXPECT_LT(remote, cleanup);
  EXPECT_EQ(result.best().mode, engine::DataMode::RemoteIO);
}

// With the default placement (inputs/outputs at the user site, intermediates
// co-located on the default class) the optimizer's per-mode totals must
// agree with dataModeComparison — same simulations, same fee arithmetic.
TEST(OptimizePlacement, AgreesWithDataModeComparison) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  for (const char* provider :
       {"amazon-2008", "storage-heavy", "compute-discount"}) {
    SCOPED_TRACE(provider);
    OptimizeConfig config;
    config.providers = {provider};
    const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
    const auto rows = dataModeComparison(wf, kCatalog.pricing(provider),
                                         DataModeComparisonConfig{});
    const auto best = bestPerMode(result, provider);
    for (const DataModeMetrics& row : rows) {
      SCOPED_TRACE(engine::dataModeName(row.mode));
      const PlacementCandidate& c = best.at(row.mode);
      EXPECT_NEAR(c.cost.total().value(), row.totalCost().value(), 1e-9);
      EXPECT_NEAR(c.cost.cpu.value(), row.cpuCost.value(), 1e-12);
      EXPECT_NEAR(c.cost.storage.value(), row.storageCost.value(), 1e-12);
      EXPECT_NEAR(c.cost.transfer.value(),
                  (row.transferInCost + row.transferOutCost).value(), 1e-12);
      EXPECT_DOUBLE_EQ(c.makespanSeconds, row.makespanSeconds);
    }
  }
}

TEST(OptimizePlacement, DeterministicAcrossJobsValues) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig serial;
  serial.useSpot = true;
  serial.sweepArchiveHosting = true;
  const OptimizeResult a = optimizePlacement(wf, kCatalog, serial);
  OptimizeConfig threaded = serial;
  threaded.jobs = 4;
  const OptimizeResult b = optimizePlacement(wf, kCatalog, threaded);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].cost.total().value(),
              b.ranked[i].cost.total().value());
    EXPECT_EQ(a.ranked[i].makespanSeconds, b.ranked[i].makespanSeconds);
    EXPECT_EQ(a.ranked[i].assignment.computeProvider,
              b.ranked[i].assignment.computeProvider);
    EXPECT_EQ(a.ranked[i].assignment.instanceType,
              b.ranked[i].assignment.instanceType);
    EXPECT_EQ(a.ranked[i].onFrontier, b.ranked[i].onFrontier);
  }
}

TEST(OptimizePlacement, RankedCheapestFirstAndFrontierConsistent) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.useSpot = true;
  config.sweepArchiveHosting = true;
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  ASSERT_GT(result.candidates, 10u);
  EXPECT_EQ(result.candidates, result.ranked.size());
  EXPECT_TRUE(result.ranked.front().onFrontier);  // Cheapest always wins.
  for (std::size_t i = 1; i < result.ranked.size(); ++i)
    EXPECT_LE(result.ranked[i - 1].cost.total(), result.ranked[i].cost.total());
  // Frontier = no candidate is both cheaper and faster (cheapest-first scan).
  double bestMakespan = std::numeric_limits<double>::infinity();
  for (const PlacementCandidate& c : result.ranked) {
    EXPECT_EQ(c.onFrontier, c.makespanSeconds < bestMakespan);
    bestMakespan = std::min(bestMakespan, c.makespanSeconds);
  }
}

TEST(OptimizePlacement, FasterSkuCutsMakespanAndSimulationsAreDeduped) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2010"};
  config.modes = {engine::DataMode::Regular};
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  // 3 SKUs x 3 storage classes x 1 mode; one simulation per distinct speed.
  EXPECT_EQ(result.candidates, 9u);
  EXPECT_EQ(result.simulations, 3u);
  std::map<std::string, double> makespanBySku;
  for (const PlacementCandidate& c : result.ranked)
    makespanBySku[c.assignment.instanceType] = c.makespanSeconds;
  EXPECT_LT(makespanBySku.at("c1.medium"), makespanBySku.at("m1.small"));
  EXPECT_LT(makespanBySku.at("m2.xlarge"), makespanBySku.at("c1.medium"));
}

TEST(OptimizePlacement, SpotCandidatesCheaperCpuButCarryInterruptions) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2010"};
  config.modes = {engine::DataMode::Regular};
  config.useSpot = true;
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  EXPECT_EQ(result.candidates, 18u);  // On-demand + spot per combination.
  bool sawSpot = false;
  for (const PlacementCandidate& c : result.ranked) {
    if (!c.assignment.spot) continue;
    sawSpot = true;
    EXPECT_GT(c.expectedInterruptions, 0.0);
    EXPECT_GT(c.cost.spotRework.value(), 0.0);
    // Find the on-demand twin: same SKU, mode, placement.
    const auto twin = std::find_if(
        result.ranked.begin(), result.ranked.end(),
        [&](const PlacementCandidate& o) {
          return !o.assignment.spot &&
                 o.assignment.instanceType == c.assignment.instanceType &&
                 o.assignment.intermediates.storageClass ==
                     c.assignment.intermediates.storageClass &&
                 o.mode == c.mode;
        });
    ASSERT_NE(twin, result.ranked.end());
    EXPECT_LT(c.cost.cpu, twin->cost.cpu);
  }
  EXPECT_TRUE(sawSpot);
}

TEST(OptimizePlacement, ArchiveHostingPaysRetrievalAndAmortizedHolding) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2010"};
  config.modes = {engine::DataMode::Regular};
  config.sweepArchiveHosting = true;
  config.requestsPerMonth = 100.0;
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  bool sawGlacier = false;
  for (const PlacementCandidate& c : result.ranked) {
    if (c.assignment.inputs.isUserSite()) {
      EXPECT_EQ(c.cost.retrieval.value(), 0.0);
      EXPECT_EQ(c.cost.archiveShare.value(), 0.0);
      continue;
    }
    // Hosted inputs always pay the amortized holding bill...
    EXPECT_GT(c.cost.archiveShare.value(), 0.0);
    // ...and the glacier-style tier also pays retrieval on every read.
    if (c.assignment.inputs.storageClass == "glacier") {
      sawGlacier = true;
      EXPECT_GT(c.cost.retrieval.value(), 0.0);
    }
  }
  EXPECT_TRUE(sawGlacier);
}

TEST(OptimizePlacement, CrossProviderScratchPaysBothBoundaries) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2008", "compute-discount"};
  config.modes = {engine::DataMode::Regular};
  config.sweepCrossProviderScratch = true;
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  bool sawRemoteScratch = false;
  for (const PlacementCandidate& c : result.ranked) {
    const bool remote = c.assignment.intermediates.provider !=
                        c.assignment.computeProvider;
    if (remote) sawRemoteScratch = true;
    EXPECT_EQ(c.cost.scratchTransfer.value() > 0.0, remote);
  }
  EXPECT_TRUE(sawRemoteScratch);
}

TEST(OptimizePlacement, SkuGranularityNeverCheaper) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig ideal;
  ideal.providers = {"amazon-2010"};
  ideal.modes = {engine::DataMode::Regular};
  OptimizeConfig hourly = ideal;
  hourly.skuGranularity = true;  // amazon-2010 SKUs bill per-hour.
  const OptimizeResult a = optimizePlacement(wf, kCatalog, ideal);
  const OptimizeResult b = optimizePlacement(wf, kCatalog, hourly);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  // Compare cheapest totals; rounding up to whole hours can only add cost.
  EXPECT_GE(b.best().cost.total(), a.best().cost.total());
}

TEST(OptimizePlacement, MemoCacheServesRepeatRuns) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  runner::ScenarioMemoCache cache;
  OptimizeConfig config;
  config.providers = {"amazon-2008"};
  config.cache = &cache;
  const OptimizeResult first = optimizePlacement(wf, kCatalog, config);
  const auto missesAfterFirst = cache.stats().misses;
  EXPECT_GT(missesAfterFirst, 0u);
  const OptimizeResult second = optimizePlacement(wf, kCatalog, config);
  EXPECT_EQ(cache.stats().misses, missesAfterFirst);  // All hits.
  ASSERT_EQ(first.ranked.size(), second.ranked.size());
  for (std::size_t i = 0; i < first.ranked.size(); ++i)
    EXPECT_EQ(first.ranked[i].cost.total().value(),
              second.ranked[i].cost.total().value());
}

TEST(OptimizePlacement, RejectsBadConfig) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig unknown;
  unknown.providers = {"nimbus"};
  EXPECT_THROW(optimizePlacement(wf, kCatalog, unknown), std::out_of_range);
  OptimizeConfig noModes;
  noModes.modes = {};
  EXPECT_THROW(optimizePlacement(wf, kCatalog, noModes),
               std::invalid_argument);
  cloud::ProviderCatalog empty;
  EXPECT_THROW(optimizePlacement(wf, empty, OptimizeConfig{}),
               std::invalid_argument);
}

TEST(OptimizeTable, TopRowsPlusFrontier) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2008", "amazon-2010"};
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  const Table t = optimizeTable(result, 5);
  EXPECT_EQ(t.columnCount(), 11u);
  EXPECT_GE(t.rowCount(), 5u);
  EXPECT_LE(t.rowCount(), result.ranked.size());
}

TEST(DescribeCandidate, MentionsEveryAxis) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  OptimizeConfig config;
  config.providers = {"amazon-2008"};
  const OptimizeResult result = optimizePlacement(wf, kCatalog, config);
  const std::string text = describeCandidate(result.best());
  EXPECT_NE(text.find("amazon-2008"), std::string::npos) << text;
  EXPECT_NE(text.find("m1.small"), std::string::npos) << text;
  EXPECT_NE(text.find("user"), std::string::npos) << text;
  EXPECT_NE(text.find("$"), std::string::npos) << text;
}

// The migration differential: every legacy sweep fed the catalog-derived
// Pricing must be byte-identical to the same sweep fed the historical
// static, for any worker count.
TEST(CatalogMigration, SweepsByteIdenticalStaticVsCatalog) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const cloud::Pricing fromStatic = cloud::Pricing::amazon2008();
  const cloud::Pricing fromCatalog = kCatalog.pricing("amazon-2008");

  for (int jobs : {0, 3}) {
    SCOPED_TRACE(jobs);
    ProvisioningSweepConfig pcfg;
    pcfg.processorCounts = {1, 4, 16};
    pcfg.jobs = jobs;
    const auto pa = provisioningSweep(wf, fromStatic, pcfg);
    const auto pb = provisioningSweep(wf, fromCatalog, pcfg);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].totalCost.value(), pb[i].totalCost.value());
      EXPECT_EQ(pa[i].makespanSeconds, pb[i].makespanSeconds);
    }

    DataModeComparisonConfig dcfg;
    dcfg.jobs = jobs;
    const auto da = dataModeComparison(wf, fromStatic, dcfg);
    const auto db = dataModeComparison(wf, fromCatalog, dcfg);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].totalCost().value(), db[i].totalCost().value());
      EXPECT_EQ(da[i].storageCost.value(), db[i].storageCost.value());
    }

    CcrSweepConfig ccfg;
    ccfg.ccrTargets = {0.053, 1.0};
    ccfg.jobs = jobs;
    const auto ca = ccrSweep(wf, fromStatic, ccfg);
    const auto cb = ccrSweep(wf, fromCatalog, ccfg);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i)
      EXPECT_EQ(ca[i].totalCost.value(), cb[i].totalCost.value());
  }
}

}  // namespace
}  // namespace mcsim::analysis
