#include "mcsim/analysis/service.hpp"

#include <gtest/gtest.h>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

RequestProfile cheapProfile() {
  RequestProfile p;
  p.name = "unit";
  p.costOnDemand = Money(2.22);
  p.costPreStaged = Money(2.12);
  p.costServeStored = Money(0.09);
  p.productBytes = Bytes::fromMB(557.9);
  return p;
}

TEST(Service, DeterministicForFixedSeed) {
  const auto a = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon);
  const auto b = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon);
  EXPECT_EQ(a.requestCount, b.requestCount);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_DOUBLE_EQ(a.archivePlusCache.total.value(),
                   b.archivePlusCache.total.value());
}

TEST(Service, RequestVolumeTracksRate) {
  ServiceWorkloadParams params;
  params.requestsPerDay = 100.0;
  const auto r = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon, params);
  // Poisson with mean 3,000 over the month.
  EXPECT_GT(r.requestCount, 2500u);
  EXPECT_LT(r.requestCount, 3500u);
}

TEST(Service, ArchiveFeeMatchesPaper) {
  const auto r =
      simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0), kAmazon);
  EXPECT_NEAR(r.archiveMonthlyCost.value(), 1800.0, 1e-9);
}

TEST(Service, LowVolumeFavoursRecompute) {
  // Far below the ~18k/month break-even: hosting the archive cannot pay.
  ServiceWorkloadParams params;
  params.requestsPerDay = 10.0;
  const auto r = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon, params);
  EXPECT_LT(r.recompute.total, r.archiveInCloud.total);
  EXPECT_EQ(&r.best(), &r.recompute);
}

TEST(Service, HighVolumeFavoursArchive) {
  // Far above break-even (requests/month ~30,000 > 18,000).
  ServiceWorkloadParams params;
  params.requestsPerDay = 1000.0;
  const auto r = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon, params);
  EXPECT_LT(r.archiveInCloud.total, r.recompute.total);
}

TEST(Service, CachingBeatsPlainArchiveWhenRequestsRepeat) {
  ServiceWorkloadParams params;
  params.requestsPerDay = 200.0;
  params.popularFraction = 0.9;
  params.popularRegionCount = 10;  // heavy repetition
  const auto r = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon, params);
  EXPECT_GT(r.cacheHits, r.requestCount / 2);
  EXPECT_LT(r.archivePlusCache.total, r.archiveInCloud.total);
}

TEST(Service, NoRepetitionMeansNoCacheHits) {
  ServiceWorkloadParams params;
  params.popularFraction = 0.0;
  const auto r = simulateServiceMonth({cheapProfile()}, Bytes::fromTB(12.0),
                                      kAmazon, params);
  EXPECT_EQ(r.cacheHits, 0u);
  // Cache policy degenerates to the plain archive policy (no product
  // storage accrues either).
  EXPECT_NEAR(r.archivePlusCache.total.value(), r.archiveInCloud.total.value(),
              1e-9);
}

TEST(Service, ProfileWeightsRespected) {
  RequestProfile expensive = cheapProfile();
  expensive.name = "expensive";
  expensive.costOnDemand = Money(100.0);
  expensive.weight = 0.0;  // never drawn
  const auto r = simulateServiceMonth({cheapProfile(), expensive},
                                      Bytes::fromTB(12.0), kAmazon);
  // All requests drawn from the cheap profile.
  EXPECT_NEAR(r.recompute.total.value(), 2.22 * r.requestCount, 1e-6);
}

TEST(Service, PerRequestHelper) {
  PolicyCost c;
  c.total = Money(100.0);
  EXPECT_DOUBLE_EQ(c.perRequest(50).value(), 2.0);
  EXPECT_DOUBLE_EQ(c.perRequest(0).value(), 0.0);
}

TEST(Service, ProfileFromWorkflowMatchesModeComparison) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const RequestProfile p =
      profileFromWorkflow(wf, Bytes::fromMB(173.46), kAmazon);
  EXPECT_EQ(p.name, "montage-1deg");
  const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
  EXPECT_NEAR(p.costOnDemand.value(), rows[1].totalCost().value(), 1e-9);
  EXPECT_LT(p.costPreStaged, p.costOnDemand);
  EXPECT_NEAR(p.costServeStored.value(), 0.17346 * 0.16, 1e-6);
}

TEST(Service, InvalidInputsRejected) {
  EXPECT_THROW(simulateServiceMonth({}, Bytes::fromTB(1.0), kAmazon),
               std::invalid_argument);
  ServiceWorkloadParams bad;
  bad.requestsPerDay = 0.0;
  EXPECT_THROW(
      simulateServiceMonth({cheapProfile()}, Bytes::fromTB(1.0), kAmazon, bad),
      std::invalid_argument);
  bad = {};
  bad.popularFraction = 1.5;
  EXPECT_THROW(
      simulateServiceMonth({cheapProfile()}, Bytes::fromTB(1.0), kAmazon, bad),
      std::invalid_argument);
  bad = {};
  bad.popularRegionCount = 0;
  EXPECT_THROW(
      simulateServiceMonth({cheapProfile()}, Bytes::fromTB(1.0), kAmazon, bad),
      std::invalid_argument);
  RequestProfile negative = cheapProfile();
  negative.weight = -1.0;
  EXPECT_THROW(
      simulateServiceMonth({negative}, Bytes::fromTB(1.0), kAmazon),
      std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::analysis
