#include "mcsim/analysis/placement.hpp"

#include <gtest/gtest.h>

#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

cloud::Pricing computeCheap() {
  cloud::Pricing p;
  p.providerName = "compute-cheap";
  p.cpuPerHour = Money(0.02);
  p.storagePerGBMonth = Money(1.00);
  p.transferInPerGB = Money(0.10);
  p.transferOutPerGB = Money(0.16);
  return p;
}

cloud::Pricing storageCheap() {
  cloud::Pricing p;
  p.providerName = "storage-cheap";
  p.cpuPerHour = Money(0.50);
  p.storagePerGBMonth = Money(0.02);
  p.transferInPerGB = Money(0.10);
  p.transferOutPerGB = Money(0.16);
  return p;
}

RequestShape shape() {
  RequestShape s;
  s.cpuSeconds = 20.3 * kSecondsPerHour;
  s.inputBytes = Bytes::fromMB(825.0);
  s.productBytes = Bytes::fromMB(557.9);
  return s;
}

TEST(Placement, AllPairingsEvaluated) {
  const auto plans = comparePlacements(shape(), Bytes::fromTB(12.0), 1000.0,
                                       {computeCheap(), storageCheap()});
  EXPECT_EQ(plans.size(), 4u);  // 2 x 2
}

TEST(Placement, SortedCheapestFirst) {
  const auto plans = comparePlacements(shape(), Bytes::fromTB(12.0), 1000.0,
                                       {computeCheap(), storageCheap()});
  for (std::size_t i = 1; i < plans.size(); ++i)
    EXPECT_LE(plans[i - 1].monthlyTotal, plans[i].monthlyTotal);
}

TEST(Placement, SplitPlacementWinsWhenMarketIsSplit) {
  // Expensive archive at compute-cheap ($12k/mo for 12 TB) vs cheap archive
  // at storage-cheap ($240/mo): the split plan pays cross-provider
  // transfers but saves on both big-ticket items.
  const auto plans = comparePlacements(shape(), Bytes::fromTB(12.0), 1000.0,
                                       {computeCheap(), storageCheap()});
  EXPECT_EQ(plans[0].computeProvider, "compute-cheap");
  EXPECT_EQ(plans[0].archiveProvider, "storage-cheap");
  EXPECT_FALSE(plans[0].colocated);
}

TEST(Placement, ColocationSkipsInterProviderTransfer) {
  const auto plans = comparePlacements(shape(), Bytes::fromTB(12.0), 100.0,
                                       {computeCheap()});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].colocated);
  // Only the product egress is paid.
  EXPECT_NEAR(plans[0].transferPerRequest.value(), 0.5579 * 0.16, 1e-6);
}

TEST(Placement, CrossProviderPaysEgressAndIngress) {
  const auto plans = comparePlacements(shape(), Bytes::fromTB(12.0), 100.0,
                                       {computeCheap(), storageCheap()});
  for (const PlacementPlan& plan : plans) {
    if (plan.colocated) continue;
    // 0.825 GB x ($0.16 out + $0.10 in) + product egress.
    EXPECT_NEAR(plan.transferPerRequest.value(),
                0.825 * 0.26 + 0.5579 * 0.16, 1e-6);
  }
}

TEST(Placement, ZeroVolumeReducesToArchiveFee) {
  const auto plans = comparePlacements(shape(), Bytes::fromTB(1.0), 0.0,
                                       {computeCheap(), storageCheap()});
  for (const PlacementPlan& plan : plans)
    EXPECT_DOUBLE_EQ(plan.monthlyTotal.value(), plan.archiveMonthly.value());
}

TEST(Placement, ShapeFromWorkflowUsesAggregates) {
  const auto wf = montage::buildMontageWorkflow(2.0);
  const RequestShape s = shapeFromWorkflow(wf);
  EXPECT_NEAR(s.cpuSeconds, 20.3 * kSecondsPerHour, 1e-6);
  EXPECT_NEAR(s.inputBytes.value(), wf.externalInputBytes().value(), 1.0);
  EXPECT_NEAR(s.productBytes.value(), wf.workflowOutputBytes().value(), 1.0);
}

TEST(Placement, AmazonAloneMatchesQ2bArithmetic) {
  // With a single provider the best plan's monthly total reduces to the
  // paper's archive + per-request math.
  const auto amazon = cloud::Pricing::amazon2008();
  const auto plans =
      comparePlacements(shape(), Bytes::fromTB(12.0), 18000.0, {amazon});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_NEAR(plans[0].archiveMonthly.value(), 1800.0, 1e-9);
  EXPECT_NEAR(plans[0].computePerRequest.value(), 2.03, 1e-9);
}

TEST(Placement, InvalidInputsRejected) {
  EXPECT_THROW(comparePlacements(shape(), Bytes::fromTB(1.0), 10.0, {}),
               std::invalid_argument);
  EXPECT_THROW(comparePlacements(shape(), Bytes::fromTB(1.0), -5.0,
                                 {computeCheap()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::analysis
