// Differential + reconciliation tests for the critical-path explainer.
//
// The simulated critical path is checked against the analytic
// dag::criticalPathSeconds bound: with zero contention and no data movement
// the two agree *exactly*; with contention, staging or faults the simulated
// path can only be longer.  Independently, the makespan tiling and the cost
// split must always reconcile with report.json's authoritative totals.
#include "mcsim/analysis/explain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "tests/common/json.hpp"
#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/report.hpp"

namespace mcsim::analysis {
namespace {

/// Run `wf`, folding spans and billing line items from the same stream.
struct ExplainedRun {
  engine::ExecutionResult result;
  obs::TraceStore store;
  Explanation explanation;
};

ExplainedRun explainWorkflow(const dag::Workflow& wf, engine::EngineConfig cfg,
                             cloud::CpuBillingMode billing =
                                 cloud::CpuBillingMode::Provisioned) {
  ExplainedRun run;
  obs::SpanSink spans(run.store, traceTopology(wf));
  obs::ReportBuilder lineItems;
  obs::FanOutSink fan({&spans, &lineItems});
  cfg.observer = &fan;
  run.result = engine::simulateWorkflow(wf, cfg);
  const obs::RunReport report = lineItems.build(
      wf, run.result, cloud::Pricing::amazon2008(), billing);
  run.explanation = explainRun(wf, run.store, report);
  return run;
}

/// Control-dependency-only diamond (no files, so no staging time):
/// a(10) -> {b(20), c(35)} -> d(5); analytic critical path = 50 s.
dag::Workflow diamondDag() {
  dag::Workflow wf("diamond");
  const auto a = wf.addTask("a", "gen", 10.0);
  const auto b = wf.addTask("b", "work", 20.0);
  const auto c = wf.addTask("c", "work", 35.0);
  const auto d = wf.addTask("d", "join", 5.0);
  wf.addControlDependency(a, b);
  wf.addControlDependency(a, c);
  wf.addControlDependency(b, d);
  wf.addControlDependency(c, d);
  wf.finalize();
  return wf;
}

void expectTilesMakespan(const Explanation& e, double tol = 1e-9) {
  const auto& segs = e.path.segments;
  ASSERT_FALSE(segs.empty());
  EXPECT_NEAR(segs.front().beginSeconds, 0.0, tol);
  EXPECT_NEAR(segs.back().endSeconds, e.makespanSeconds, tol);
  double sum = 0.0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].beginSeconds, segs[i].endSeconds) << "segment " << i;
    if (i > 0) {
      EXPECT_NEAR(segs[i].beginSeconds, segs[i - 1].endSeconds, tol)
          << "segment " << i << " not contiguous";
    }
    sum += segs[i].seconds();
  }
  EXPECT_NEAR(sum, e.makespanSeconds, 1e-6);
  double bucketSum = 0.0;
  for (double s : e.bucketSeconds) bucketSum += s;
  EXPECT_NEAR(bucketSum, e.makespanSeconds, 1e-6);
}

void expectCostsReconcile(const Explanation& e) {
  const double split = e.criticalCost.value() + e.slackCost.value() +
                       e.stagingCost.value() + e.unattributedCost.value();
  EXPECT_NEAR(split, e.totalCost.value(), 1e-6);
  // The per-task table covers exactly the critical tasks, and the by-type
  // drill-down is a regrouping of the same rows.
  EXPECT_EQ(e.tasks.size(), e.criticalTasks);
  EXPECT_EQ(e.path.taskOrder.size(), e.criticalTasks);
  double taskSeconds = 0.0;
  for (const TaskShare& t : e.tasks) taskSeconds += t.criticalSeconds;
  double typeSeconds = 0.0;
  std::size_t typeTasks = 0;
  for (const TypeShare& t : e.byType) {
    typeSeconds += t.criticalSeconds;
    typeTasks += t.tasks;
  }
  EXPECT_NEAR(taskSeconds, typeSeconds, 1e-9);
  EXPECT_EQ(typeTasks, e.criticalTasks);
}

TEST(ExplainDifferential, NoContentionAgreesExactlyWithAnalyticBound) {
  const dag::Workflow wf = diamondDag();
  const double analytic = dag::criticalPathSeconds(wf);
  ASSERT_DOUBLE_EQ(analytic, 50.0);

  engine::EngineConfig cfg;
  cfg.processors = static_cast<int>(dag::maxParallelism(wf));
  const ExplainedRun run = explainWorkflow(wf, cfg);

  // Enough processors, no files, no faults: the simulation IS the analytic
  // critical path, to the bit.
  EXPECT_DOUBLE_EQ(run.result.makespanSeconds, analytic);
  EXPECT_DOUBLE_EQ(run.explanation.makespanSeconds, analytic);
  const auto& buckets = run.explanation.bucketSeconds;
  EXPECT_DOUBLE_EQ(buckets[static_cast<std::size_t>(CostBucket::Compute)],
                   analytic);
  EXPECT_DOUBLE_EQ(buckets[static_cast<std::size_t>(CostBucket::QueueWait)],
                   0.0);
  EXPECT_DOUBLE_EQ(buckets[static_cast<std::size_t>(CostBucket::Gap)], 0.0);
  expectTilesMakespan(run.explanation);
  expectCostsReconcile(run.explanation);

  // The path is a -> c -> d (the 35 s branch).
  ASSERT_EQ(run.explanation.path.taskOrder.size(), 3u);
  EXPECT_EQ(run.explanation.path.taskOrder[0], 0u);  // a
  EXPECT_EQ(run.explanation.path.taskOrder[1], 2u);  // c
  EXPECT_EQ(run.explanation.path.taskOrder[2], 3u);  // d
}

TEST(ExplainDifferential, ContentionCanOnlyLengthenThePath) {
  const dag::Workflow wf = diamondDag();
  const double analytic = dag::criticalPathSeconds(wf);

  engine::EngineConfig cfg;
  cfg.processors = 1;  // b and c serialize
  const ExplainedRun run = explainWorkflow(wf, cfg);

  EXPECT_GE(run.result.makespanSeconds, analytic);
  // One processor: makespan is the serialized sum of all runtimes.
  EXPECT_DOUBLE_EQ(run.result.makespanSeconds, 70.0);
  // The extra 20 s surface as queue-wait on the path, not as a mystery gap.
  const auto& buckets = run.explanation.bucketSeconds;
  EXPECT_NEAR(buckets[static_cast<std::size_t>(CostBucket::QueueWait)], 20.0,
              1e-9);
  expectTilesMakespan(run.explanation);
  expectCostsReconcile(run.explanation);
}

TEST(ExplainDifferential, FaultsCanOnlyLengthenThePath) {
  const dag::Workflow wf = diamondDag();
  const double analytic = dag::criticalPathSeconds(wf);

  engine::EngineConfig cfg;
  cfg.processors = static_cast<int>(dag::maxParallelism(wf));
  cfg.faults.processor.mtbfSeconds = 20.0;  // expect a few crashes in 70 s
  cfg.faults.retry.maxRetries = 10;
  cfg.faults.retry.delaySeconds = 1.0;
  cfg.faults.seed = 7;
  const ExplainedRun run = explainWorkflow(wf, cfg);

  ASSERT_EQ(run.result.tasksFailed, 0u);
  EXPECT_GE(run.result.makespanSeconds, analytic);
  expectTilesMakespan(run.explanation);
  expectCostsReconcile(run.explanation);
}

TEST(ExplainMontage, AllDataModesTileAndReconcile) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const double analytic = dag::criticalPathSeconds(wf);

  for (const engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    SCOPED_TRACE(engine::dataModeName(mode));
    engine::EngineConfig cfg;
    cfg.mode = mode;
    cfg.processors = 8;
    const ExplainedRun run = explainWorkflow(wf, cfg);

    // Staging and contention make the simulated path >= the runtime-only
    // analytic bound.
    EXPECT_GE(run.explanation.makespanSeconds, analytic);
    EXPECT_DOUBLE_EQ(run.explanation.makespanSeconds,
                     run.result.makespanSeconds);
    expectTilesMakespan(run.explanation, 1e-7);
    expectCostsReconcile(run.explanation);
    EXPECT_GT(run.explanation.criticalTasks, 0u);
    EXPECT_EQ(run.explanation.totalTasks, wf.taskCount());
    EXPECT_EQ(run.explanation.mode, engine::dataModeName(mode));
  }
}

TEST(ExplainMontage, UsageBillingReconcilesToo) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  engine::EngineConfig cfg;
  cfg.processors = 4;
  const ExplainedRun run =
      explainWorkflow(wf, cfg, cloud::CpuBillingMode::Usage);
  expectTilesMakespan(run.explanation, 1e-7);
  expectCostsReconcile(run.explanation);
  // Usage billing has no provisioned-but-idle surplus.
  EXPECT_NEAR(run.explanation.unattributedCost.value(), 0.0, 1e-9);
  EXPECT_EQ(run.explanation.billing, "usage");
}

TEST(ExplainOutput, JsonDocumentParsesAndMatchesExplanation) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  engine::EngineConfig cfg;
  cfg.processors = 4;
  const ExplainedRun run = explainWorkflow(wf, cfg);

  std::ostringstream os;
  writeExplanationJson(os, run.explanation);
  const test::JsonValue doc = test::parseJson(os.str());
  EXPECT_EQ(doc.at("schema").asString(), "mcsim.explain.v1");
  EXPECT_NEAR(doc.at("makespan_seconds").asNumber(),
              run.explanation.makespanSeconds, 1e-9);
  EXPECT_NEAR(doc.at("cost").at("total").asNumber(),
              run.explanation.totalCost.value(), 1e-9);
  EXPECT_EQ(static_cast<std::size_t>(doc.at("critical_tasks").asNumber()),
            run.explanation.criticalTasks);
  EXPECT_EQ(doc.at("tasks").asArray().size(), run.explanation.tasks.size());

  std::ostringstream table;
  printExplanation(table, run.explanation, 5);
  EXPECT_NE(table.str().find("critical path"), std::string::npos);
}

TEST(ExplainEdge, EmptyTraceYieldsOneGapSegment) {
  obs::TraceStore empty;
  const CriticalPath path = extractCriticalPath(empty, 42.0);
  ASSERT_EQ(path.segments.size(), 1u);
  EXPECT_EQ(path.segments[0].bucket, CostBucket::Gap);
  EXPECT_DOUBLE_EQ(path.segments[0].seconds(), 42.0);
  EXPECT_TRUE(path.taskOrder.empty());
}

}  // namespace
}  // namespace mcsim::analysis
