#include "mcsim/analysis/report.hpp"

#include <gtest/gtest.h>

namespace mcsim::analysis {
namespace {

TEST(Report, MoneyCellFourDecimals) {
  EXPECT_EQ(moneyCell(Money(0.56)), "$0.5600");
  EXPECT_EQ(moneyCell(Money(0.0001)), "$0.0001");
  EXPECT_EQ(moneyCell(Money(13.92)), "$13.9200");
}

TEST(Report, ProvisioningTableRendersAnchors) {
  ProvisioningPoint p;
  p.processors = 1;
  p.makespanSeconds = 5.5 * 3600.0;
  p.cpuCost = Money(0.55);
  p.storageCost = Money(0.001);
  p.storageCleanupCost = Money(0.0008);
  p.transferCost = Money(0.05);
  p.totalCost = Money(0.601);
  p.utilization = 0.98;
  const Table t = provisioningTable(
      {p}, {{1, "paper: ~$0.60, 5.5 h"}});
  const std::string out = t.toString();
  EXPECT_NE(out.find("5.50 h"), std::string::npos);
  EXPECT_NE(out.find("paper: ~$0.60"), std::string::npos);
  EXPECT_NE(out.find("$0.5500"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Report, DataModeTableHasAllModes) {
  std::vector<DataModeMetrics> rows(3);
  rows[0].mode = engine::DataMode::RemoteIO;
  rows[1].mode = engine::DataMode::Regular;
  rows[2].mode = engine::DataMode::DynamicCleanup;
  const std::string out = dataModeTable(rows).toString();
  EXPECT_NE(out.find("remote-io"), std::string::npos);
  EXPECT_NE(out.find("regular"), std::string::npos);
  EXPECT_NE(out.find("cleanup"), std::string::npos);
}

TEST(Report, CcrTableRows) {
  CcrPoint a;
  a.ccr = 0.053;
  CcrPoint b;
  b.ccr = 4.0;
  const Table t = ccrTable({a, b});
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_NE(t.toString().find("0.053"), std::string::npos);
}

TEST(Report, CpuVsDmTable) {
  CpuVsDmRow r;
  r.workflow = "montage-2deg";
  r.mode = engine::DataMode::Regular;
  r.cpuCost = Money(2.03);
  r.dmCost = Money(0.19);
  r.totalCost = Money(2.22);
  const std::string out = cpuVsDmTable({r}).toString();
  EXPECT_NE(out.find("montage-2deg"), std::string::npos);
  EXPECT_NE(out.find("$2.0300"), std::string::npos);
}

TEST(Report, ArchiveEconomicsTable) {
  const ArchiveEconomics e = archiveBreakEven(
      Bytes::fromTB(12.0), Money(2.12), Money(2.22),
      cloud::Pricing::amazon2008());
  const std::string out = archiveEconomicsTable(e).toString();
  EXPECT_NE(out.find("12.00 TB"), std::string::npos);
  EXPECT_NE(out.find("$1,800.00"), std::string::npos);
  EXPECT_NE(out.find("18000"), std::string::npos);
}

TEST(Report, ArchiveEconomicsNeverBreaksEven) {
  const ArchiveEconomics e = archiveBreakEven(
      Bytes::fromTB(1.0), Money(5.0), Money(1.0),
      cloud::Pricing::amazon2008());
  EXPECT_NE(archiveEconomicsTable(e).toString().find("never"),
            std::string::npos);
}

TEST(Report, ArchivalDecisionTableLabels) {
  const auto d = mosaicArchivalDecision(Money(0.56), Bytes::fromMB(173.46),
                                        cloud::Pricing::amazon2008());
  const std::string out =
      archivalDecisionTable({d}, {"1 degree"}).toString();
  EXPECT_NE(out.find("1 degree"), std::string::npos);
  EXPECT_NE(out.find("21.52"), std::string::npos);
}

}  // namespace
}  // namespace mcsim::analysis
