// The paper's Question 2b / Question 3 arithmetic, pinned to its exact
// published numbers.
#include "mcsim/analysis/economics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

TEST(ArchiveBreakEven, TwoMassNumbersFromPaper) {
  // "the cost of storing the data can be ... 12,000 x $0.15 = $1,800 per
  // month ... users would need to request at least $1,800/($2.22-$2.12) =
  // 18,000 mosaics per month ... an additional $1,200 at $0.1 per GB."
  const ArchiveEconomics e = archiveBreakEven(
      Bytes::fromTB(12.0), Money(2.12), Money(2.22), kAmazon);
  EXPECT_NEAR(e.monthlyStorageCost.value(), 1800.0, 1e-9);
  EXPECT_NEAR(e.initialTransferCost.value(), 1200.0, 1e-9);
  EXPECT_NEAR(e.savingPerRequest.value(), 0.10, 1e-12);
  EXPECT_NEAR(e.breakEvenRequestsPerMonth, 18000.0, 1e-6);
}

TEST(ArchiveBreakEven, NoSavingMeansNever) {
  const ArchiveEconomics e = archiveBreakEven(
      Bytes::fromTB(1.0), Money(2.22), Money(2.12), kAmazon);
  EXPECT_LT(e.savingPerRequest.value(), 0.0);
  EXPECT_TRUE(std::isinf(e.breakEvenRequestsPerMonth));
}

TEST(ArchiveBreakEven, EmptyArchiveRejected) {
  EXPECT_THROW(archiveBreakEven(Bytes(0.0), Money(1.0), Money(2.0), kAmazon),
               std::invalid_argument);
}

TEST(ArchivalDecision, OneDegreeMosaic) {
  // "For the cost of 56 cents, this mosaic [173.46 MB] can be stored for
  // 21.52 months."
  const ArchivalDecision d =
      mosaicArchivalDecision(Money(0.56), Bytes::fromMB(173.46), kAmazon);
  EXPECT_NEAR(d.breakEvenMonths, 21.52, 0.01);
}

TEST(ArchivalDecision, TwoDegreeMosaic) {
  // "the size of the 2 square degree mosaic is 557.9 MB and the CPU cost for
  // creating it was $2.03 ... the mosaic can be stored for 24.25 months."
  const ArchivalDecision d =
      mosaicArchivalDecision(Money(2.03), Bytes::fromMB(557.9), kAmazon);
  EXPECT_NEAR(d.breakEvenMonths, 24.25, 0.01);
}

TEST(ArchivalDecision, FourDegreeMosaic) {
  // "the 4 square degree mosaic is about 2.229 GB and the CPU cost ... is
  // $8.40.  At this cost, the mosaic can be stored for 25.12 months."
  const ArchivalDecision d =
      mosaicArchivalDecision(Money(8.40), Bytes::fromGB(2.229), kAmazon);
  EXPECT_NEAR(d.breakEvenMonths, 25.12, 0.01);
}

TEST(ArchivalDecision, MonthlyCostIsRateTimesSize) {
  const ArchivalDecision d =
      mosaicArchivalDecision(Money(1.0), Bytes::fromGB(2.0), kAmazon);
  EXPECT_NEAR(d.monthlyStorageCost.value(), 0.30, 1e-12);
}

TEST(ArchivalDecision, EmptyProductRejected) {
  EXPECT_THROW(mosaicArchivalDecision(Money(1.0), Bytes(0.0), kAmazon),
               std::invalid_argument);
}

TEST(ArchivalDecision, FreeStorageMeansStoreForever) {
  cloud::Pricing free;
  const ArchivalDecision d =
      mosaicArchivalDecision(Money(1.0), Bytes::fromGB(1.0), free);
  EXPECT_TRUE(std::isinf(d.breakEvenMonths));
}

TEST(SkyCampaign, PaperTotals) {
  // "3,900 x $8.88 = $34,632 ... $8.75 leading to a total cost of 3,900 x
  // $8.75 = $34,145" (the paper rounds $34,125 up via its own figures; we
  // reproduce the multiplication).
  const SkyCampaignCost c = skyCampaign(3900, Money(8.88), Money(8.75));
  EXPECT_NEAR(c.totalOnDemand.value(), 34632.0, 1e-9);
  EXPECT_NEAR(c.totalPreStaged.value(), 34125.0, 1e-9);
  EXPECT_EQ(c.plateCount, 3900);
}

TEST(SkyTiling, PaperPlateCountsExact) {
  // "Roughly it would translate to about 3,900 4-degree-square mosaics or
  // about 1,734 6-degrees-square mosaics."
  EXPECT_EQ(skyPlateCount(4.0), 3900);
  EXPECT_EQ(skyPlateCount(6.0), 1734);
}

TEST(SkyTiling, ImpliedOverlapFactor) {
  // The two counts imply the same covered area: ~62,400 sq deg over the
  // 41,253 sq deg sky, i.e. ~51% overlap.
  EXPECT_NEAR(kPaperSkyCoverageSquareDegrees / kFullSkySquareDegrees, 1.5127,
              0.001);
}

TEST(SkyTiling, CustomCoverage) {
  // No overlap: exactly area / plate-area, rounded up.
  EXPECT_EQ(skyPlateCount(4.0, kFullSkySquareDegrees), 2579);  // 41253/16
  EXPECT_EQ(skyPlateCount(10.0, 1000.0), 10);
  EXPECT_EQ(skyPlateCount(10.0, 1001.0), 11);
}

TEST(SkyTiling, InvalidArgumentsRejected) {
  EXPECT_THROW(skyPlateCount(0.0), std::invalid_argument);
  EXPECT_THROW(skyPlateCount(4.0, -1.0), std::invalid_argument);
}

TEST(SkyCampaign, InvalidPlateCountRejected) {
  EXPECT_THROW(skyCampaign(0, Money(1.0), Money(1.0)), std::invalid_argument);
  EXPECT_THROW(skyCampaign(-5, Money(1.0), Money(1.0)), std::invalid_argument);
}

TEST(ServicePlan, TotalsScaleWithRequests) {
  ServicePlan plan;
  plan.processors = 16;
  plan.requests = 500;
  plan.perRequestCost = Money(9.25);
  plan.perRequestMakespanSeconds = 5.5 * kSecondsPerHour;
  // Paper: "a total cost of 500 mosaics would be $4,625."
  EXPECT_NEAR(plan.totalCost().value(), 4625.0, 1e-9);
}

}  // namespace
}  // namespace mcsim::analysis
