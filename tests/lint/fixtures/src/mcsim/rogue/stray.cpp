// Seeded layer-config violation: the "rogue" module directory is not
// declared in the fixture tools/lint/layers.json.
namespace lintfix::rogue {

int stray() { return 0; }

}  // namespace lintfix::rogue
