// Seeded hygiene violations: the umbrella include inside src/mcsim/ and a
// deprecated-declaration warning suppression outside tests/.
#include "mcsim/mcsim.hpp"

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace lintfix {

int answer() { return 42; }

}  // namespace lintfix
