// Seeded nondeterminism sources: libc RNG, wall-clock reads.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace lintfix {

int roll() {
  return std::rand();  // line 9: no-rand
}

long stamp() {
  return time(nullptr);  // line 13: no-wallclock
}

double wall() {
  auto wallNow = std::chrono::system_clock::now();    // line 17: no-wallclock
  auto monoNow = std::chrono::steady_clock::now();    // line 18: no-wallclock
  return std::chrono::duration<double>(wallNow.time_since_epoch()).count() +
         std::chrono::duration<double>(monoNow.time_since_epoch()).count();
}

}  // namespace lintfix
