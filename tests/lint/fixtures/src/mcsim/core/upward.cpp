// Seeded layering violation: core sits below engine in the fixture DAG
// (tools/lint/layers.json declares core with no deps), so this upward
// include must be reported as layer-order.
#include "mcsim/engine/trace_hot.hpp"

namespace lintfix::core {

int fromAbove() { return 1; }

}  // namespace lintfix::core
