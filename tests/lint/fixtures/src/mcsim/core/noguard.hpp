// Seeded pragma-once violation: this header deliberately has no include
// guard of any kind.
namespace lintfix::core {

struct Bare {
  int id = 0;
};

}  // namespace lintfix::core
