// Seeded container hazards: hash-order iteration feeding a result, and a
// pointer-keyed ordered map.
#include <map>
#include <string>
#include <unordered_map>

namespace lintfix {

struct Registry {
  std::unordered_map<std::string, int> counts_;
  std::map<const Registry*, int> owners_;  // line 11: ptr-key

  int total() const {
    int sum = 0;
    for (const auto& [key, value] : counts_) sum += value;  // line 15
    return sum;
  }
};

}  // namespace lintfix
