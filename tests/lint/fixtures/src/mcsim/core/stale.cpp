// Seeded suppression problems: a stale allow() that suppresses nothing and
// an allow() naming a rule that does not exist.
namespace lintfix {

// mcsim-lint: allow(no-rand) — stale: nothing below calls rand
int pure() { return 4; }

// mcsim-lint: allow(not-a-rule)
int two() { return 2; }

}  // namespace lintfix
