// Seeded IWYU violation: uses mcsim::obs:: symbols without directly
// including any mcsim/obs/ header (in the real tree the symbol would be
// satisfied transitively; here nothing is included at all).
namespace mcsim::engine {

int drain(obs::Sink* sink) { return sink != nullptr; }

}  // namespace mcsim::engine
