// Seeded trace-macro violations: raw span/phase emission on the engine hot
// path must go through the MCSIM_TRACE_* macros, plus one macro-wrapped call
// and one justified (suppressed) direct emission.  Fixtures are linted, not
// compiled, so the referenced types stay undeclared.  The obs include keeps
// the IWYU pass satisfied; uses_obs.cpp seeds the missing-include case.
#include "mcsim/obs/sinkdecl.hpp"

namespace lintfix::engine {

void hotLoop(obs::TraceStore& store, obs::PhaseProfiler& profiler) {
  const auto s = store.beginSpan(0, 1.0);  // line 8: trace-macro
  store.endSpan(s, 2.0);                   // line 9: trace-macro
  store.addCounterSample(2.0, 64.0, 1.0);  // line 10: trace-macro
  obs::ScopedPhase manual(&profiler);      // line 11: trace-macro
  MCSIM_TRACE_PHASE(&profiler, obs::SimPhase::EventLoop);  // wrapped: ok
  // mcsim-lint: allow(trace-macro) — fixture: a justified direct emission
  // that the suppression machinery must swallow (and count as used).
  store.addCounterSample(3.0, 64.0, 1.0);
}

}  // namespace lintfix::engine
