// Seeded float-determinism violations: exact equality against a
// floating-point literal.  Integer comparisons must not trigger.
namespace lintfix::fp {

bool isUnit(double x) { return x == 1.0; }

bool nonzero(double x) { return x != 0.0; }

bool intsAreFine(int n) { return n == 1; }

}  // namespace lintfix::fp
