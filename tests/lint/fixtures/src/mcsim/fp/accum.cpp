// Seeded float-determinism violation: a floating-point sum accumulated in
// hash order gives run-to-run different rounding.
#include <string>
#include <unordered_map>

namespace lintfix::fp {

std::unordered_map<std::string, double> weights;

double total() {
  double sum = 0.0;
  for (const auto& [name, w] : weights) sum += w;
  return sum;
}

}  // namespace lintfix::fp
