// Ownership anchor for the IWYU-lite fixture: the obs module claims the
// mcsim::obs namespace, so engine/uses_obs.cpp's qualified use without a
// direct include is a missing-include finding.
#pragma once

namespace mcsim::obs {

class Sink;

}  // namespace mcsim::obs
