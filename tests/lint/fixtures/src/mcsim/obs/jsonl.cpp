// Seeded taxonomy drift: the Writer visitor forgets the LinkDown payload.
#include "mcsim/obs/event.hpp"

namespace lintfix::obs {

struct Writer {
  void operator()(const TaskStarted& e) { last = e.id; }
  void operator()(const TaskFinished& e) { last = e.id; }
  int last = 0;
};

}  // namespace lintfix::obs
