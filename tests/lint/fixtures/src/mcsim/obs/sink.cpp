// Seeded taxonomy drift: eventName() forgets EventKind::LinkDown.
#include "mcsim/obs/event.hpp"

namespace lintfix::obs {

const char* eventName(EventKind kind) {
  switch (kind) {
    case EventKind::TaskStarted:
      return "task_started";
    case EventKind::TaskFinished:
      return "task_finished";
  }
  return "unknown";
}

}  // namespace lintfix::obs
