// Seeded taxonomy drift: the enum has three kinds but kEventKindCount says
// two, and the sink/jsonl fixtures below forget LinkDown.  Expected findings
// live in tests/lint/lint_test.cpp (kExpectedFixtureFindings).
#pragma once

#include <variant>

namespace lintfix::obs {

struct TaskStarted {
  int id = 0;
};
struct TaskFinished {
  int id = 0;
};
struct LinkDown {};

enum class EventKind { TaskStarted, TaskFinished, LinkDown };

inline constexpr int kEventKindCount = 2;  // drift: enum has 3 enumerators

using Payload = std::variant<TaskStarted, TaskFinished, LinkDown>;

}  // namespace lintfix::obs
