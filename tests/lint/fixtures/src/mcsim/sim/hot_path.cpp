// Seeded hot-path violations: std::function storage and per-event heap
// allocations inside src/mcsim/sim/, plus one justified (suppressed) case.
#include <functional>
#include <memory>

namespace lintfix::sim {

struct Engine {
  std::function<void()> callback;  // line 9: sim-std-function

  void schedule() {
    auto shared = std::make_shared<int>(7);  // line 12: sim-heap-alloc
    int* raw = new int(3);                   // line 13: sim-heap-alloc
    delete raw;
    *shared += 1;
    // mcsim-lint: allow(sim-heap-alloc) — fixture: a justified allocation
    // that the suppression machinery must swallow (and count as used).
    auto owned = std::make_unique<int>(9);
    *owned += 1;
  }
};

}  // namespace lintfix::sim
