// Seeded concurrency violations: detach() orphans the thread, and a
// condition-variable wait without a predicate misses spurious wakeups.
#include <condition_variable>
#include <mutex>
#include <thread>

namespace lintfix::conc {

std::mutex mu;
std::condition_variable cv;
bool ready = false;

void waiter() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock);
  cv.wait(lock, [] { return ready; });
}

void spawn() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace lintfix::conc
