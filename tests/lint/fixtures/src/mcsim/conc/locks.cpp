// Seeded concurrency violations: raw lock()/unlock() outside a RAII guard,
// plus a pairwise acquisition-order inversion between stateMu and queueMu.
#include <mutex>

namespace lintfix::conc {

std::mutex gate_;
std::mutex stateMu;
std::mutex queueMu;

void raw() {
  gate_.lock();
  gate_.unlock();
}

void forward() {
  std::lock_guard<std::mutex> a(stateMu);
  std::lock_guard<std::mutex> b(queueMu);
}

void backward() {
  std::lock_guard<std::mutex> b(queueMu);
  std::lock_guard<std::mutex> a(stateMu);
}

void bothAtOnce() {
  // scoped_lock acquires atomically; its internal pair must not count as
  // an ordering edge in either direction (and must not hide the seeded
  // stateMu/queueMu inversion above, so it takes a different pair).
  std::scoped_lock both(gate_, stateMu);
}

}  // namespace lintfix::conc
