// Second half of the seeded include cycle (see a.hpp).
#pragma once

#include "mcsim/cyc/a.hpp"

namespace lintfix::cyc {

struct B {
  int a = 0;
};

}  // namespace lintfix::cyc
