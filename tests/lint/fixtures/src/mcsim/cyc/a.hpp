// Seeded include cycle: a.hpp and b.hpp include each other.  The cycle is
// reported once, anchored at the lexically smallest member (this file).
#pragma once

#include "mcsim/cyc/b.hpp"

namespace lintfix::cyc {

struct A {
  int b = 0;
};

}  // namespace lintfix::cyc
