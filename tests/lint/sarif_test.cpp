// SARIF 2.1.0 and GitHub-annotation renderer tests.  The SARIF document is
// validated structurally against the 2.1.0 schema shape (required members,
// member types, rule-index consistency) by parsing it with util/json — the
// same parser CI-side consumers get, so "it parses and has the members" is
// the contract being pinned.
#include "lint.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcsim/util/json.hpp"

namespace {

using mcsim::json::JsonValue;
using mcsim::json::parseJson;
using mcsim::lint::Diagnostic;
using mcsim::lint::ruleCatalog;
using mcsim::lint::toGithubAnnotations;
using mcsim::lint::toSarif;

const std::vector<Diagnostic> kFresh = {
    {"src/mcsim/x.cpp", 3, "no-rand", "rand() is nondeterministic"},
    {"src/mcsim/y.cpp", 9, "float-equality", "exact == against `1.0`"},
};
const std::vector<Diagnostic> kBaselined = {
    {"bench/a.cpp", 7, "float-equality", "exact != against `0.0`"},
};

TEST(Sarif, ValidatesAgainst210SchemaStructure) {
  const JsonValue doc = parseJson(toSarif(kFresh, kBaselined));
  ASSERT_TRUE(doc.isObject());

  // Top level: $schema (the 2.1.0 schema URI), version, runs.
  ASSERT_TRUE(doc.has("$schema"));
  EXPECT_NE(doc.asObject().at("$schema").asString().find("sarif-schema-2.1.0"),
            std::string::npos);
  ASSERT_TRUE(doc.has("version"));
  EXPECT_EQ(doc.asObject().at("version").asString(), "2.1.0");
  ASSERT_TRUE(doc.has("runs"));
  ASSERT_TRUE(doc.asObject().at("runs").isArray());
  ASSERT_EQ(doc.asObject().at("runs").asArray().size(), 1u);

  // runs[0].tool.driver: name plus the full rule catalog.
  const JsonValue& run = doc.asObject().at("runs").asArray()[0];
  ASSERT_TRUE(run.isObject());
  const JsonValue& driver =
      run.asObject().at("tool").asObject().at("driver");
  EXPECT_EQ(driver.asObject().at("name").asString(), "mcsim-lint");
  const auto& rules = driver.asObject().at("rules").asArray();
  ASSERT_EQ(rules.size(), ruleCatalog().size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].asObject().at("id").asString(), ruleCatalog()[i].id);
    EXPECT_FALSE(rules[i]
                     .asObject()
                     .at("shortDescription")
                     .asObject()
                     .at("text")
                     .asString()
                     .empty());
  }

  // results: one per finding, ruleIndex consistent with the rules array,
  // locations carrying a SRCROOT-relative uri and a 1-based startLine.
  const auto& results = run.asObject().at("results").asArray();
  ASSERT_EQ(results.size(), kFresh.size() + kBaselined.size());
  for (const JsonValue& r : results) {
    const auto& obj = r.asObject();
    const std::string& ruleId = obj.at("ruleId").asString();
    const auto index = static_cast<std::size_t>(
        obj.at("ruleIndex").asNumber());
    ASSERT_LT(index, rules.size());
    EXPECT_EQ(rules[index].asObject().at("id").asString(), ruleId);
    EXPECT_FALSE(
        obj.at("message").asObject().at("text").asString().empty());
    const auto& locs = obj.at("locations").asArray();
    ASSERT_EQ(locs.size(), 1u);
    const auto& phys = locs[0].asObject().at("physicalLocation").asObject();
    const auto& artifact = phys.at("artifactLocation").asObject();
    EXPECT_FALSE(artifact.at("uri").asString().empty());
    EXPECT_EQ(artifact.at("uriBaseId").asString(), "SRCROOT");
    EXPECT_GE(phys.at("region").asObject().at("startLine").asNumber(), 1.0);
  }
}

TEST(Sarif, BaselinedFindingsCarryExternalSuppression) {
  const JsonValue doc = parseJson(toSarif(kFresh, kBaselined));
  const auto& results = doc.asObject()
                            .at("runs")
                            .asArray()[0]
                            .asObject()
                            .at("results")
                            .asArray();
  std::size_t suppressed = 0;
  for (const JsonValue& r : results) {
    if (!r.asObject().count("suppressions")) continue;
    const auto& sups = r.asObject().at("suppressions").asArray();
    ASSERT_EQ(sups.size(), 1u);
    EXPECT_EQ(sups[0].asObject().at("kind").asString(), "external");
    ++suppressed;
  }
  EXPECT_EQ(suppressed, kBaselined.size());
}

TEST(Sarif, HostileMessageBytesStillParse) {
  const std::vector<Diagnostic> nasty = {
      {"src/a \"b\".cpp", 1, "no-rand", "line1\nline2\ttab \\ and \"quote\""}};
  const JsonValue doc = parseJson(toSarif(nasty, {}));
  const auto& result = doc.asObject()
                           .at("runs")
                           .asArray()[0]
                           .asObject()
                           .at("results")
                           .asArray()[0];
  EXPECT_EQ(result.asObject().at("message").asObject().at("text").asString(),
            "line1\nline2\ttab \\ and \"quote\"");
}

TEST(Sarif, EmptyRunIsStillAValidDocument) {
  const JsonValue doc = parseJson(toSarif({}, {}));
  const auto& run = doc.asObject().at("runs").asArray()[0];
  EXPECT_TRUE(run.asObject().at("results").asArray().empty());
}

// -- GitHub annotations ------------------------------------------------------

TEST(GithubAnnotations, FreshIsErrorBaselinedIsNotice) {
  const std::string out = toGithubAnnotations(kFresh, kBaselined);
  EXPECT_NE(out.find("::error file=src/mcsim/x.cpp,line=3,"
                     "title=mcsim-lint no-rand::"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("::notice file=bench/a.cpp,line=7,"
                     "title=mcsim-lint float-equality (baselined)::"),
            std::string::npos)
      << out;
}

TEST(GithubAnnotations, MessageDataIsEscaped) {
  // The workflow-command grammar terminates on newline and expands %xx, so
  // %, CR and LF must be escaped in the data portion.
  const std::string out = toGithubAnnotations(
      {{"a.cpp", 1, "no-rand", "50% of\r\nruns differ"}}, {});
  EXPECT_NE(out.find("50%25 of%0D%0Aruns differ"), std::string::npos) << out;
  // Exactly one annotation line despite the embedded newline.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

}  // namespace
