// layers.json codec tests plus the pin that keeps the committed DAG honest:
// the declared module dependencies must equal, exactly, the include edges
// present in src/ — an edge that stops being used must be deleted from
// layers.json, a new edge must be declared there (or the include fixed).
#include "layers.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

using mcsim::lint::FileContent;
using mcsim::lint::LayerGraph;
using mcsim::lint::LayerModule;
using mcsim::lint::layersCycle;
using mcsim::lint::layersFromJson;
using mcsim::lint::layersToJson;
using mcsim::lint::moduleEdges;

LayerGraph smallGraph() {
  LayerGraph g;
  g.modules = {LayerModule{"base", {}},
               LayerModule{"mid", {"base"}},
               LayerModule{"top", {"base", "mid"}}};
  g.files["src/mcsim/special.hpp"] = "top";
  return g;
}

// -- codec -------------------------------------------------------------------

TEST(LayersCodec, RoundTripIsByteStable) {
  const std::string once = layersToJson(smallGraph());
  const auto parsed = layersFromJson(once);
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  EXPECT_EQ(layersToJson(parsed.value()), once);
}

TEST(LayersCodec, ParsePreservesStructure) {
  const auto parsed = layersFromJson(layersToJson(smallGraph()));
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  const LayerGraph& g = parsed.value();
  ASSERT_EQ(g.modules.size(), 3u);
  ASSERT_NE(g.find("top"), nullptr);
  EXPECT_EQ(g.find("top")->deps, (std::vector<std::string>{"base", "mid"}));
  EXPECT_EQ(g.moduleOf("src/mcsim/special.hpp"), "top");
  EXPECT_EQ(g.moduleOf("src/mcsim/mid/x.hpp"), "mid");
  EXPECT_EQ(g.moduleOf("tools/lint/lint.cpp"), "");
}

TEST(LayersCodec, RejectionsNameTheConstraint) {
  const struct {
    const char* doc;
    const char* needle;
  } kCases[] = {
      {"[]", "object"},
      {"{\"version\": 2, \"modules\": [{\"name\": \"a\", \"deps\": []}]}",
       "version"},
      {"{\"version\": 1}", "must not be empty"},
      {"{\"version\": 1, \"modules\": [{\"name\": \"a\", \"deps\": []}],"
       " \"bogus\": 1}",
       "unknown key"},
      {"{\"version\": 1, \"modules\": [{\"name\": \"a\", \"deps\": []},"
       " {\"name\": \"a\", \"deps\": []}]}",
       "duplicate"},
      {"{\"version\": 1, \"modules\": [{\"name\": \"a\", \"deps\": [\"a\"]}]}",
       "itself"},
      {"{\"version\": 1, \"modules\": [{\"name\": \"a\", \"deps\": [\"b\"]}]}",
       "undeclared"},
      {"{\"version\": 1, \"modules\": [{\"name\": \"a\", \"deps\": []}],"
       " \"files\": {\"src/mcsim/x.hpp\": \"nope\"}}",
       "undeclared"},
  };
  for (const auto& c : kCases) {
    const auto parsed = layersFromJson(c.doc);
    ASSERT_FALSE(parsed.hasValue()) << c.doc;
    EXPECT_NE(parsed.error().find(c.needle), std::string::npos)
        << c.doc << " -> " << parsed.error();
  }
}

TEST(LayersCycle, AcyclicGraphReportsNothing) {
  EXPECT_EQ(layersCycle(smallGraph()), "");
}

TEST(LayersCycle, CycleIsRendered) {
  LayerGraph g;
  g.modules = {LayerModule{"a", {"b"}}, LayerModule{"b", {"a"}}};
  // The codec refuses nothing here — cycles are a graph property, checked
  // separately so the linter can report them as layer-config findings.
  EXPECT_EQ(layersCycle(g), "a -> b -> a");
}

// -- the committed DAG vs the actual include graph ---------------------------

std::vector<FileContent> loadSrcTree(const fs::path& root) {
  std::vector<FileContent> files;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    const std::string name = entry.path().filename().string();
    if (ext != ".hpp" && ext != ".cpp" &&
        name.find(".hpp.in") == std::string::npos)
      continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files.push_back(FileContent{
        fs::relative(entry.path(), root).generic_string(), text.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const FileContent& a, const FileContent& b) {
              return a.path < b.path;
            });
  return files;
}

TEST(LayersPinned, CommittedGraphMatchesActualIncludeGraph) {
  const fs::path root = MCSIM_LINT_REPO_ROOT;
  std::ifstream in(root / "tools" / "lint" / "layers.json");
  ASSERT_TRUE(in.good()) << "missing tools/lint/layers.json";
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = layersFromJson(text.str());
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  const LayerGraph& graph = parsed.value();
  EXPECT_EQ(layersCycle(graph), "");

  const auto edges = moduleEdges(loadSrcTree(root), graph);

  // Every actual edge must be declared...
  std::set<std::pair<std::string, std::string>> declared;
  for (const LayerModule& m : graph.modules)
    for (const std::string& dep : m.deps) declared.emplace(m.name, dep);
  for (const auto& [from, to] : edges)
    EXPECT_TRUE(declared.count({from, to}))
        << "undeclared include edge " << from << " -> " << to
        << "; declare it in tools/lint/layers.json or fix the include";

  // ... and every declared edge must exist (no stale permissions).
  const std::set<std::pair<std::string, std::string>> actual(edges.begin(),
                                                             edges.end());
  for (const auto& e : declared)
    EXPECT_TRUE(actual.count(e))
        << "declared dependency " << e.first << " -> " << e.second
        << " matches no include; delete it from tools/lint/layers.json";
}

}  // namespace
