// mcsim-lint behaviour tests: the seeded-violation fixture tree must produce
// exactly the golden findings, suppressions must cover (and only cover) their
// target lines, and the JSON output must stay machine-readable.
#include "lint.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using mcsim::lint::Diagnostic;
using mcsim::lint::FileContent;
using mcsim::lint::Options;
using mcsim::lint::lintFiles;
using mcsim::lint::lintTree;
using mcsim::lint::stripSource;
using mcsim::lint::toJson;

// -- fixture tree (golden findings) ------------------------------------------

struct Expected {
  const char* file;
  int line;
  const char* rule;
};

// One entry per seeded violation in tests/lint/fixtures/.  Sorted the way
// the linter sorts (file, then line) so a mismatch diffs cleanly.
constexpr Expected kExpectedFixtureFindings[] = {
    {"src/mcsim/conc/locks.cpp", 12, "raw-mutex-lock"},
    {"src/mcsim/conc/locks.cpp", 13, "raw-mutex-lock"},
    {"src/mcsim/conc/locks.cpp", 23, "lock-order"},
    {"src/mcsim/conc/threads.cpp", 15, "cv-wait-predicate"},
    {"src/mcsim/conc/threads.cpp", 21, "thread-detach"},
    {"src/mcsim/core/containers.cpp", 11, "ptr-key"},
    {"src/mcsim/core/containers.cpp", 15, "unordered-float-accum"},
    {"src/mcsim/core/containers.cpp", 15, "unordered-iter"},
    {"src/mcsim/core/hygiene.cpp", 3, "include-hygiene"},
    {"src/mcsim/core/hygiene.cpp", 5, "deprecated-compat"},
    {"src/mcsim/core/noguard.hpp", 1, "pragma-once"},
    {"src/mcsim/core/nondet.cpp", 9, "no-rand"},
    {"src/mcsim/core/nondet.cpp", 13, "no-wallclock"},
    {"src/mcsim/core/nondet.cpp", 17, "no-wallclock"},
    {"src/mcsim/core/nondet.cpp", 18, "no-wallclock"},
    {"src/mcsim/core/stale.cpp", 5, "unused-suppression"},
    {"src/mcsim/core/stale.cpp", 8, "unused-suppression"},
    {"src/mcsim/core/upward.cpp", 4, "layer-order"},
    {"src/mcsim/cyc/a.hpp", 5, "include-cycle"},
    {"src/mcsim/engine/trace_hot.cpp", 11, "trace-macro"},
    {"src/mcsim/engine/trace_hot.cpp", 12, "trace-macro"},
    {"src/mcsim/engine/trace_hot.cpp", 13, "trace-macro"},
    {"src/mcsim/engine/trace_hot.cpp", 14, "trace-macro"},
    {"src/mcsim/engine/uses_obs.cpp", 6, "missing-include"},
    {"src/mcsim/fp/accum.cpp", 12, "unordered-float-accum"},
    {"src/mcsim/fp/accum.cpp", 12, "unordered-iter"},
    {"src/mcsim/fp/compare.cpp", 5, "float-equality"},
    {"src/mcsim/fp/compare.cpp", 7, "float-equality"},
    {"src/mcsim/obs/event.hpp", 20, "event-taxonomy"},
    {"src/mcsim/obs/jsonl.cpp", 6, "event-taxonomy"},
    {"src/mcsim/obs/sink.cpp", 6, "event-taxonomy"},
    {"src/mcsim/rogue/stray.cpp", 1, "layer-config"},
    {"src/mcsim/sim/hot_path.cpp", 9, "sim-std-function"},
    {"src/mcsim/sim/hot_path.cpp", 12, "sim-heap-alloc"},
    {"src/mcsim/sim/hot_path.cpp", 13, "sim-heap-alloc"},
};

std::vector<Diagnostic> lintFixtures() {
  std::string error;
  auto diags = lintTree(MCSIM_LINT_FIXTURES_DIR, {}, Options{}, &error);
  EXPECT_EQ(error, "");
  return diags;
}

TEST(LintFixtures, GoldenFindings) {
  const auto diags = lintFixtures();
  ASSERT_EQ(diags.size(), std::size(kExpectedFixtureFindings));
  for (std::size_t i = 0; i < diags.size(); ++i) {
    SCOPED_TRACE("finding #" + std::to_string(i));
    EXPECT_EQ(diags[i].file, kExpectedFixtureFindings[i].file);
    EXPECT_EQ(diags[i].line, kExpectedFixtureFindings[i].line);
    EXPECT_EQ(diags[i].rule, kExpectedFixtureFindings[i].rule);
    EXPECT_FALSE(diags[i].message.empty());
  }
}

TEST(LintFixtures, JustifiedSuppressionIsSwallowed) {
  // hot_path.cpp carries one allow(sim-heap-alloc) over a make_unique call:
  // the allocation must not be reported, and the suppression must count as
  // used (no unused-suppression finding for hot_path.cpp).
  for (const auto& d : lintFixtures()) {
    if (d.file != "src/mcsim/sim/hot_path.cpp") continue;
    EXPECT_NE(d.rule, "unused-suppression") << d.message;
    EXPECT_NE(d.line, 18) << d.rule << ": " << d.message;
  }
}

TEST(LintFixtures, MissingRootIsAnErrorNotACleanTree) {
  std::string error;
  const auto diags =
      lintTree("/nonexistent-mcsim-lint-root", {}, Options{}, &error);
  EXPECT_TRUE(diags.empty());
  EXPECT_NE(error.find("no such directory"), std::string::npos) << error;
}

TEST(LintFixtures, EveryRuleHasCatalogCoverage) {
  // Each fixture rule id must exist in the catalog (guards against the
  // fixtures drifting when rule ids are renamed).
  for (const auto& e : kExpectedFixtureFindings)
    EXPECT_TRUE(mcsim::lint::isKnownRule(e.rule)) << e.rule;
}

// -- lexer -------------------------------------------------------------------

TEST(LintLexer, StripsCommentsKeepsLineCount) {
  // Newline-terminated input yields one (empty) line per trailing newline,
  // keeping line numbers identical to the editor's.
  const auto lines = stripSource(
      "int a; // trailing\n"
      "/* block\n"
      "   spanning */ int b;\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].code.substr(0, 6), "int a;");
  EXPECT_EQ(lines[0].comment.find("trailing") != std::string::npos, true);
  EXPECT_EQ(lines[1].code.find("block"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int b;"), std::string::npos);
}

TEST(LintLexer, BlanksStringAndCharLiterals) {
  const auto lines = stripSource("auto s = \"rand() time(nullptr)\";\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
}

TEST(LintLexer, RawStringsDoNotLeak) {
  const auto lines = stripSource(
      "auto s = R\"(rand() // not a comment)\";\n"
      "int after;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].code.find("int after;"), std::string::npos);
}

// -- rules on synthetic inputs ----------------------------------------------

std::vector<Diagnostic> lintOne(const std::string& path,
                                const std::string& text,
                                Options options = Options{}) {
  return lintFiles({FileContent{path, text}}, options);
}

TEST(LintRules, LiteralsAndCommentsNeverTrigger) {
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "// rand() in a comment\n"
                             "const char* s = \"time(nullptr)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, QuotedUmbrellaIncludeIsCaught) {
  const auto diags =
      lintOne("src/mcsim/x.cpp", "#include \"mcsim/mcsim.hpp\"\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, UmbrellaIncludeAllowedOutsideLibrary) {
  EXPECT_TRUE(lintOne("tools/x.cpp", "#include \"mcsim/mcsim.hpp\"\n").empty());
  EXPECT_TRUE(
      lintOne("examples/x.cpp", "#include \"mcsim/mcsim.hpp\"\n").empty());
}

TEST(LintRules, SteadyClockAllowedOutsideSrc) {
  const std::string text =
      "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lintOne("bench/x.cpp", text).empty());
  EXPECT_FALSE(lintOne("src/mcsim/x.cpp", text).empty());
}

TEST(LintRules, PlacementNewIsNotAnAllocation) {
  const auto diags = lintOne("src/mcsim/sim/x.cpp",
                             "void f(void* p) { ::new (p) int(7); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, TraceMacroGuardsHotPathsOnly) {
  const std::string direct = "void f(S& s) { s.beginSpan(0, 1.0); }\n";
  // Direct emission is flagged in sim/engine/runner ...
  for (const char* path : {"src/mcsim/sim/x.cpp", "src/mcsim/engine/x.cpp",
                           "src/mcsim/runner/x.cpp"}) {
    const auto diags = lintOne(path, direct);
    ASSERT_EQ(diags.size(), 1u) << path;
    EXPECT_EQ(diags[0].rule, "trace-macro");
  }
  // ... but not in the obs implementation or cold analysis/tool code,
  EXPECT_TRUE(lintOne("src/mcsim/obs/x.cpp", direct).empty());
  EXPECT_TRUE(lintOne("src/mcsim/analysis/x.cpp", direct).empty());
  EXPECT_TRUE(lintOne("tools/x.cpp", direct).empty());
  // and a macro-wrapped line is exempt wherever it appears.
  EXPECT_TRUE(lintOne("src/mcsim/engine/x.cpp",
                      "void f(P* p) { MCSIM_TRACE_PHASE(p, Phase::Loop); }\n")
                  .empty());
}

// -- suppressions ------------------------------------------------------------

TEST(LintSuppressions, TrailingCommentCoversItsLine) {
  const auto diags = lintOne(
      "src/mcsim/x.cpp",
      "int r = rand();  // mcsim-lint: allow(no-rand) — fixture\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppressions, StandaloneCommentCoversNextCodeLine) {
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "// mcsim-lint: allow(no-rand) — a multi-line\n"
                             "// justification keeps the allow with its why\n"
                             "int r = rand();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppressions, SuppressionDoesNotLeakPastTarget) {
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "// mcsim-lint: allow(no-rand)\n"
                             "int a = rand();\n"
                             "int b = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintSuppressions, UnusedSuppressionReported) {
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "// mcsim-lint: allow(no-rand)\n"
                             "int pure() { return 4; }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unused-suppression");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintSuppressions, UnknownRuleReported) {
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "int r = rand();  // mcsim-lint: allow(bogus)\n");
  ASSERT_EQ(diags.size(), 2u);  // the rand finding survives + unknown allow
  EXPECT_EQ(diags[0].rule, "no-rand");
  EXPECT_EQ(diags[1].rule, "unused-suppression");
}

TEST(LintSuppressions, UnusedCheckCanBeDisabled) {
  Options options;
  options.checkUnusedSuppressions = false;
  const auto diags = lintOne("src/mcsim/x.cpp",
                             "// mcsim-lint: allow(no-rand)\n"
                             "int pure() { return 4; }\n", options);
  EXPECT_TRUE(diags.empty());
}

// -- JSON --------------------------------------------------------------------

TEST(LintJson, WellFormedAndComplete) {
  const auto diags = lintFixtures();
  const std::string json = toJson(diags);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total\":" + std::to_string(diags.size())),
            std::string::npos);
  // One finding object per diagnostic.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"rule\""); pos != std::string::npos;
       pos = json.find("\"rule\"", pos + 1))
    ++count;
  EXPECT_EQ(count, diags.size());
  // The em-dash-bearing messages survive escaping: every quote is either a
  // field delimiter or escaped, so the brace balance must close.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(LintJson, EscapesSpecialCharacters) {
  const std::string json = toJson(
      {Diagnostic{"a\"b.cpp", 1, "no-rand", "line1\nline2\tend"}});
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\tend"), std::string::npos);
}

// -- catalog -----------------------------------------------------------------

TEST(LintCatalog, RuleIdsAreUniqueAndDescribed) {
  std::set<std::string> seen;
  for (const auto& rule : mcsim::lint::ruleCatalog()) {
    EXPECT_TRUE(seen.insert(rule.id).second) << rule.id;
    EXPECT_FALSE(std::string(rule.summary).empty()) << rule.id;
    EXPECT_TRUE(mcsim::lint::isKnownRule(rule.id));
  }
  EXPECT_FALSE(mcsim::lint::isKnownRule("not-a-rule"));
}

}  // namespace
