// Baseline codec and ratchet-workflow tests: adopt findings, partition a
// later run into fresh / baselined / expired, and flag allow() comments that
// double-cover a baselined line.
#include "baseline.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using mcsim::lint::applyBaseline;
using mcsim::lint::Baseline;
using mcsim::lint::BaselineEntry;
using mcsim::lint::baselineFromFindings;
using mcsim::lint::baselineFromJson;
using mcsim::lint::baselineToJson;
using mcsim::lint::Diagnostic;
using mcsim::lint::FileContent;
using mcsim::lint::lintFiles;
using mcsim::lint::Options;

// -- codec -------------------------------------------------------------------

TEST(BaselineCodec, RoundTripIsByteStable) {
  Baseline b;
  b.entries = {BaselineEntry{"bench/b.cpp", 12, "float-equality"},
               BaselineEntry{"bench/a.cpp", 7, "float-equality"}};
  const std::string once = baselineToJson(b);
  const auto parsed = baselineFromJson(once);
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  EXPECT_EQ(baselineToJson(parsed.value()), once);
  // Serialization canonicalizes: sorted, one entry per line.
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].file, "bench/a.cpp");
  EXPECT_TRUE(parsed.value().contains("bench/b.cpp", 12, "float-equality"));
  EXPECT_FALSE(parsed.value().contains("bench/b.cpp", 13, "float-equality"));
}

TEST(BaselineCodec, EmptyBaselineRoundTrips) {
  const auto parsed = baselineFromJson(baselineToJson(Baseline{}));
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  EXPECT_TRUE(parsed.value().entries.empty());
}

TEST(BaselineCodec, RejectionsNameTheConstraint) {
  const struct {
    const char* doc;
    const char* needle;
  } kCases[] = {
      {"[]", "object"},
      {"{\"version\": 2, \"findings\": []}", "version"},
      {"{\"version\": 1, \"bogus\": []}", "unknown key"},
      {"{\"version\": 1, \"findings\": [{\"file\": \"a\", \"line\": 0,"
       " \"rule\": \"r\"}]}",
       "positive integer"},
      {"{\"version\": 1, \"findings\": [{\"file\": \"a\", \"line\": 1.5,"
       " \"rule\": \"r\"}]}",
       "positive integer"},
      {"{\"version\": 1, \"findings\": [{\"file\": \"a\", \"line\": 1}]}",
       "needs"},
      {"{\"version\": 1, \"findings\": [{\"file\": \"a\", \"line\": 1,"
       " \"rule\": \"r\", \"why\": \"x\"}]}",
       "unknown finding key"},
  };
  for (const auto& c : kCases) {
    const auto parsed = baselineFromJson(c.doc);
    ASSERT_FALSE(parsed.hasValue()) << c.doc;
    EXPECT_NE(parsed.error().find(c.needle), std::string::npos)
        << c.doc << " -> " << parsed.error();
  }
}

// -- adopt / expire round trip -----------------------------------------------

TEST(BaselineRatchet, AdoptThenPartition) {
  const std::vector<Diagnostic> day0 = {
      {"bench/a.cpp", 7, "float-equality", "exact =="},
      {"bench/b.cpp", 12, "float-equality", "exact !="},
  };
  const Baseline adopted = baselineFromFindings(day0);
  ASSERT_EQ(adopted.entries.size(), 2u);

  // Same findings later: everything baselined, nothing fresh or expired.
  auto same = applyBaseline(day0, adopted);
  EXPECT_TRUE(same.fresh.empty());
  EXPECT_EQ(same.baselined.size(), 2u);
  EXPECT_TRUE(same.expired.empty());

  // One finding fixed, one new one introduced: the fix expires its entry
  // (candidate for deletion), the new finding is fresh (blocking).
  const std::vector<Diagnostic> day1 = {
      {"bench/a.cpp", 7, "float-equality", "exact =="},
      {"src/mcsim/x.cpp", 3, "no-rand", "rand()"},
  };
  auto drifted = applyBaseline(day1, adopted);
  ASSERT_EQ(drifted.fresh.size(), 1u);
  EXPECT_EQ(drifted.fresh[0].rule, "no-rand");
  ASSERT_EQ(drifted.baselined.size(), 1u);
  EXPECT_EQ(drifted.baselined[0].file, "bench/a.cpp");
  ASSERT_EQ(drifted.expired.size(), 1u);
  EXPECT_EQ(drifted.expired[0].file, "bench/b.cpp");

  // Regenerating from the day-1 run shrinks the file to the surviving entry
  // plus the (now adopted) new finding — the shrinks-only CI check sees the
  // line count, so the canonical one-entry-per-line form matters.
  const Baseline regenerated = baselineFromFindings(day1);
  EXPECT_EQ(regenerated.entries.size(), 2u);
  EXPECT_FALSE(regenerated.contains("bench/b.cpp", 12, "float-equality"));
}

TEST(BaselineRatchet, LineShiftSurfacesBothSides) {
  // An edit above a baselined line shifts the finding: exact (file, line,
  // rule) matching makes it fresh AND expires the stale entry, forcing the
  // author to regenerate rather than silently drift.
  Baseline b;
  b.entries = {BaselineEntry{"bench/a.cpp", 7, "float-equality"}};
  auto part = applyBaseline(
      {{"bench/a.cpp", 9, "float-equality", "exact =="}}, b);
  EXPECT_EQ(part.fresh.size(), 1u);
  EXPECT_TRUE(part.baselined.empty());
  EXPECT_EQ(part.expired.size(), 1u);
}

// -- suppressions vs baseline ------------------------------------------------

TEST(BaselineSuppressions, AllowOnBaselinedLineIsRedundant) {
  Baseline b;
  b.entries = {BaselineEntry{"src/mcsim/x.cpp", 1, "float-equality"}};
  Options options;
  options.baseline = &b;
  options.checkSuppressionsAgainstBaseline = true;
  const auto diags = lintFiles(
      {FileContent{"src/mcsim/x.cpp",
                   "bool z(double x) { return x == 1.0; }  "
                   "// mcsim-lint: allow(float-equality)\n"}},
      options);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "redundant-suppression");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(BaselineSuppressions, AllowOffBaselineStaysSilent) {
  // Default mode (flag off) and non-baselined lines must not flag: the
  // check exists to stop double-tracking, not to discourage allow().
  Baseline b;
  b.entries = {BaselineEntry{"src/mcsim/x.cpp", 99, "float-equality"}};
  const std::string text =
      "bool z(double x) { return x == 1.0; }  "
      "// mcsim-lint: allow(float-equality)\n";
  Options flagOff;
  flagOff.baseline = &b;
  EXPECT_TRUE(lintFiles({FileContent{"src/mcsim/x.cpp", text}},
                        flagOff).empty());
  Options flagOn = flagOff;
  flagOn.checkSuppressionsAgainstBaseline = true;
  EXPECT_TRUE(lintFiles({FileContent{"src/mcsim/x.cpp", text}},
                        flagOn).empty());
}

}  // namespace
