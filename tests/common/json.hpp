// Compatibility shim: the test JSON helper graduated into the library as
// mcsim/util/json.hpp when the serve layer needed a real request/response
// codec.  Existing tests keep including this header and using the
// mcsim::test names; new code should use mcsim::json directly.
#pragma once

#include "mcsim/util/json.hpp"

namespace mcsim::test {

using mcsim::json::JsonArray;
using mcsim::json::JsonObject;
using mcsim::json::JsonParser;
using mcsim::json::JsonValue;
using mcsim::json::parseJson;

}  // namespace mcsim::test
