// Minimal JSON parser for test assertions — just enough to verify that the
// exporters (JSONL event log, report.json, Chrome traces) emit well-formed
// JSON and to poke at fields.  Throws std::runtime_error on malformed input.
#pragma once

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace mcsim::test {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : v_(nullptr) {}
  JsonValue(Storage v) : v_(std::move(v)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isNumber() const { return std::holds_alternative<double>(v_); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isArray() const { return std::holds_alternative<JsonArray>(v_); }
  bool isObject() const { return std::holds_alternative<JsonObject>(v_); }

  bool asBool() const { return std::get<bool>(v_); }
  double asNumber() const { return std::get<double>(v_); }
  const std::string& asString() const { return std::get<std::string>(v_); }
  const JsonArray& asArray() const { return std::get<JsonArray>(v_); }
  const JsonObject& asObject() const { return std::get<JsonObject>(v_); }

  /// Object member access; throws if absent or not an object.
  const JsonValue& at(const std::string& key) const {
    const JsonObject& obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
      throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
  }
  bool has(const std::string& key) const {
    return isObject() && asObject().count(key) != 0;
  }

 private:
  Storage v_;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parseValue() {
    skipSpace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue(parseString());
      case 't':
        if (consumeWord("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consumeWord("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consumeWord("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonObject obj;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      obj.emplace(std::move(key), parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonArray arr;
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = static_cast<unsigned>(
              std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          // Tests only use ASCII; reject anything that would need UTF-8.
          if (code > 0x7f) fail("non-ascii \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    std::size_t used = 0;
    const std::string slice = text_.substr(start, pos_ - start);
    const double value = std::stod(slice, &used);
    if (used != slice.size()) fail("bad number");
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace mcsim::test
