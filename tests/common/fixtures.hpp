// Shared test fixtures.
//
// `makeFigure3Workflow` reconstructs the paper's Figure 3 example exactly as
// the text constrains it:
//   * seven tasks 0..6; tasks 0-5 take one input and produce one output;
//     task 6 takes three inputs (§3);
//   * task 0: a -> b; tasks 1 and 2 consume b ("used as input later by
//     tasks 1 and 2");
//   * file b is not dead until task 6 completes ("file b would be deleted
//     only when task 6 has completed") => 6 consumes b;
//   * the net outputs are g and h ("files g and h which are the net output
//     of the workflow are staged out").
// Concretely: 0:a->b, 1:b->c, 2:b->d, 3:d->f, 4:c->e, 5:c->h,
//             6:{e,f,b}->g.
#pragma once

#include <string>

#include "mcsim/dag/workflow.hpp"

namespace mcsim::test {

struct Figure3 {
  dag::Workflow wf{"figure3"};
  dag::FileId a, b, c, d, e, f, g, h;
  dag::TaskId t0, t1, t2, t3, t4, t5, t6;
};

/// Every file 1 MB and every task 10 s unless the caller rescales.
inline Figure3 makeFigure3Workflow() {
  Figure3 fig;
  dag::Workflow& wf = fig.wf;
  const Bytes mb = Bytes::fromMB(1.0);
  fig.a = wf.addFile("a", mb);
  fig.b = wf.addFile("b", mb);
  fig.c = wf.addFile("c", mb);
  fig.d = wf.addFile("d", mb);
  fig.e = wf.addFile("e", mb);
  fig.f = wf.addFile("f", mb);
  fig.g = wf.addFile("g", mb);
  fig.h = wf.addFile("h", mb);

  fig.t0 = wf.addTask("t0", "stage0", 10.0);
  wf.addInput(fig.t0, fig.a);
  wf.addOutput(fig.t0, fig.b);

  fig.t1 = wf.addTask("t1", "stage1", 10.0);
  wf.addInput(fig.t1, fig.b);
  wf.addOutput(fig.t1, fig.c);

  fig.t2 = wf.addTask("t2", "stage1", 10.0);
  wf.addInput(fig.t2, fig.b);
  wf.addOutput(fig.t2, fig.d);

  fig.t3 = wf.addTask("t3", "stage2", 10.0);
  wf.addInput(fig.t3, fig.d);
  wf.addOutput(fig.t3, fig.f);

  fig.t4 = wf.addTask("t4", "stage2", 10.0);
  wf.addInput(fig.t4, fig.c);
  wf.addOutput(fig.t4, fig.e);

  fig.t5 = wf.addTask("t5", "stage2", 10.0);
  wf.addInput(fig.t5, fig.c);
  wf.addOutput(fig.t5, fig.h);

  fig.t6 = wf.addTask("t6", "stage3", 10.0);
  wf.addInput(fig.t6, fig.e);
  wf.addInput(fig.t6, fig.f);
  wf.addInput(fig.t6, fig.b);
  wf.addOutput(fig.t6, fig.g);

  wf.finalize();
  return fig;
}

/// A linear chain: in -> t0 -> f0 -> t1 -> f1 -> ... -> t(n-1) -> f(n-1).
inline dag::Workflow makeChainWorkflow(int length, double taskSeconds = 10.0,
                                       Bytes fileSize = Bytes::fromMB(1.0)) {
  dag::Workflow wf("chain-" + std::to_string(length));
  dag::FileId prev = wf.addFile("in", fileSize);
  for (int i = 0; i < length; ++i) {
    const dag::TaskId t =
        wf.addTask("t" + std::to_string(i), "chain", taskSeconds);
    wf.addInput(t, prev);
    prev = wf.addFile("f" + std::to_string(i), fileSize);
    wf.addOutput(t, prev);
  }
  wf.finalize();
  return wf;
}

/// A fork-join "diamond": in -> split -> {w0..w(k-1)} -> join -> out.
inline dag::Workflow makeForkJoinWorkflow(int width, double taskSeconds = 10.0,
                                          Bytes fileSize = Bytes::fromMB(1.0)) {
  dag::Workflow wf("forkjoin-" + std::to_string(width));
  const dag::FileId in = wf.addFile("in", fileSize);
  const dag::TaskId split = wf.addTask("split", "split", taskSeconds);
  wf.addInput(split, in);
  const dag::FileId mid = wf.addFile("mid", fileSize);
  wf.addOutput(split, mid);
  const dag::TaskId join = wf.addTask("join", "join", taskSeconds);
  for (int i = 0; i < width; ++i) {
    const dag::TaskId w =
        wf.addTask("w" + std::to_string(i), "work", taskSeconds);
    wf.addInput(w, mid);
    const dag::FileId f = wf.addFile("w" + std::to_string(i) + ".out", fileSize);
    wf.addOutput(w, f);
    wf.addInput(join, f);
  }
  const dag::FileId out = wf.addFile("out", fileSize);
  wf.addOutput(join, out);
  wf.finalize();
  return wf;
}

}  // namespace mcsim::test
