// ServeDaemon end-to-end over a real AF_UNIX socket: NDJSON round trips,
// the HTTP /metrics shim, malformed-line recovery, and the three shutdown
// paths (client "shutdown" verb, stop(), signal-safe requestStop()).
//
// Socket paths are relative to the test working directory (the build tree),
// which keeps them far below the sockaddr_un limit; the daemon unlinks any
// stale file before binding, so reruns after a crash are safe.
#include "mcsim/serve/daemon.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mcsim/serve/client.hpp"
#include "mcsim/serve/protocol.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::serve {
namespace {

json::JsonValue makeSubmit(const std::vector<int>& procs) {
  json::JsonArray scenarios;
  for (int p : procs) {
    json::JsonObject s;
    s["processors"] = p;
    scenarios.push_back(json::JsonValue(std::move(s)));
  }
  json::JsonObject request;
  request["workflow"] = std::string("montage:0.2");
  request["scenarios"] = std::move(scenarios);
  json::JsonObject verb;
  verb["verb"] = std::string("submit");
  verb["request"] = std::move(request);
  return json::JsonValue(std::move(verb));
}

std::string batchGolden(const std::vector<int>& procs,
                        const cloud::Pricing& pricing) {
  const dag::Workflow wf = loadWorkflowSpec("montage:0.2");
  std::vector<runner::ScenarioSpec> specs;
  for (int p : procs) {
    runner::ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = p;
    specs.push_back(spec);
  }
  return json::dumpJson(
      scenarioResultsToJson(runner::runScenarios(specs), pricing));
}

/// Send one raw line (no client-side JSON validation) and read one reply
/// line back — for exercising the daemon's parse-error path.
std::string rawExchange(const std::string& socketPath,
                        const std::string& line) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socketPath.c_str(),
               sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string payload = line + "\n";
  EXPECT_EQ(::write(fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  std::string reply;
  char ch = 0;
  while (::read(fd, &ch, 1) == 1 && ch != '\n') reply.push_back(ch);
  ::close(fd);
  return reply;
}

TEST(ServeDaemon, SubmitResultRoundTripMatchesBatchGolden) {
  ServeDaemon daemon({.socketPath = "daemon_test_roundtrip.sock",
                      .service = {.workers = 2}});
  daemon.start();

  ServeClient client(daemon.socketPath());
  const std::vector<int> procs = {1, 4};
  const json::JsonValue submitted = client.call(makeSubmit(procs));
  ASSERT_TRUE(submitted.at("ok").asBool());

  json::JsonObject result;
  result["verb"] = std::string("result");
  result["job"] = submitted.at("job").asNumber();
  const json::JsonValue reply = client.call(json::JsonValue(result));
  ASSERT_TRUE(reply.at("ok").asBool());
  EXPECT_EQ(reply.at("state").asString(), "completed");
  EXPECT_EQ(json::dumpJson(reply.at("results")),
            batchGolden(procs, daemon.service().options().pricing));
}

TEST(ServeDaemon, MetricsMountedAsHttpEndpoint) {
  ServeDaemon daemon({.socketPath = "daemon_test_metrics.sock",
                      .service = {.workers = 1}});
  daemon.start();

  ServeClient client(daemon.socketPath());
  const json::JsonValue submitted = client.call(makeSubmit({1}));
  ASSERT_TRUE(submitted.at("ok").asBool());
  json::JsonObject result;
  result["verb"] = std::string("result");
  result["job"] = submitted.at("job").asNumber();
  ASSERT_TRUE(client.call(json::JsonValue(result)).at("ok").asBool());

  const std::string text = fetchMetrics(daemon.socketPath());
  EXPECT_NE(text.find("# TYPE mcsim_jobs_submitted_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcsim_jobs_submitted_total 1"), std::string::npos);
  EXPECT_NE(text.find("mcsim_cache_entries"), std::string::npos);
}

TEST(ServeDaemon, ParseErrorGetsReplyAndConnectionSurvives) {
  ServeDaemon daemon({.socketPath = "daemon_test_parse.sock",
                      .service = {.workers = 0}});
  daemon.start();

  const std::string reply =
      rawExchange(daemon.socketPath(), "this is not json");
  const json::JsonValue parsed = json::parseJson(reply);
  EXPECT_FALSE(parsed.at("ok").asBool());
  EXPECT_NE(parsed.at("error").asString().find("parse error"),
            std::string::npos);

  // The daemon is still healthy: a fresh client can ping.
  ServeClient client(daemon.socketPath());
  json::JsonObject ping;
  ping["verb"] = std::string("ping");
  EXPECT_TRUE(client.call(json::JsonValue(ping)).at("ok").asBool());
}

TEST(ServeDaemon, ShutdownVerbIsAcknowledgedThenStopsDaemon) {
  ServeDaemon daemon({.socketPath = "daemon_test_shutdown.sock",
                      .service = {.workers = 1}});
  daemon.start();

  ServeClient client(daemon.socketPath());
  json::JsonObject shutdown;
  shutdown["verb"] = std::string("shutdown");
  const json::JsonValue reply = client.call(json::JsonValue(shutdown));
  EXPECT_TRUE(reply.at("ok").asBool());
  EXPECT_TRUE(reply.at("shutting_down").asBool());

  daemon.wait();  // returns because the verb triggered requestStop()
  EXPECT_FALSE(daemon.running());
}

TEST(ServeDaemon, RequestStopUnblocksWait) {
  // The CLI's SIGTERM handler body: requestStop() from another thread while
  // wait() blocks must bring the daemon down cleanly.
  ServeDaemon daemon({.socketPath = "daemon_test_sigterm.sock",
                      .service = {.workers = 1}});
  daemon.start();
  EXPECT_TRUE(daemon.running());

  std::thread signaller([&] { daemon.requestStop(); });
  daemon.wait();
  signaller.join();
  EXPECT_FALSE(daemon.running());
}

}  // namespace
}  // namespace mcsim::serve
