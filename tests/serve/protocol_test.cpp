#include "mcsim/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mcsim/dag/workflow.hpp"
#include "mcsim/engine/metrics.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::serve {
namespace {

TEST(LoadWorkflowSpec, SharedSpecSyntax) {
  EXPECT_GT(loadWorkflowSpec("montage:0.2").taskCount(), 0u);
  EXPECT_GT(loadWorkflowSpec("cybershake").taskCount(), 0u);
  EXPECT_GT(loadWorkflowSpec("epigenomics").taskCount(), 0u);
  EXPECT_GT(loadWorkflowSpec("inspiral").taskCount(), 0u);
  EXPECT_GT(loadWorkflowSpec("sipht").taskCount(), 0u);
  EXPECT_ANY_THROW(loadWorkflowSpec("/no/such/file.dax"));
}

TEST(ParseSubmitRequest, FullRequest) {
  const json::JsonValue request = json::parseJson(R"({
    "workflow": "montage:0.2",
    "scenarios": [
      {"mode": "regular", "processors": 4, "bandwidth_mbps": 20,
       "label": "a"},
      {"mode": "cleanup", "processors": 8,
       "mtbf_seconds": 3600, "fault_seed": 7}
    ],
    "base_seed": 42,
    "label": "demo",
    "events": true
  })");

  const SubmitRequest sub = parseSubmitRequest(request);
  ASSERT_EQ(sub.workflows.size(), 1u);
  ASSERT_EQ(sub.scenarios.size(), 2u);
  EXPECT_EQ(sub.scenarios[0].workflow, sub.workflows[0].get());
  EXPECT_EQ(sub.scenarios[0].config.mode, engine::DataMode::Regular);
  EXPECT_EQ(sub.scenarios[0].config.processors, 4);
  EXPECT_EQ(sub.scenarios[0].config.linkBandwidthBytesPerSec,
            20.0 * 1e6 / 8.0);
  EXPECT_EQ(sub.scenarios[0].label, "a");
  EXPECT_EQ(sub.scenarios[1].config.mode, engine::DataMode::DynamicCleanup);
  EXPECT_EQ(sub.scenarios[1].config.faults.processor.mtbfSeconds, 3600.0);
  EXPECT_EQ(sub.scenarios[1].config.faults.seed, 7u);
  EXPECT_EQ(sub.baseSeed, 42u);
  EXPECT_EQ(sub.label, "demo");
  EXPECT_TRUE(sub.events);
}

TEST(ParseSubmitRequest, RejectsMalformedPayloads) {
  EXPECT_THROW(parseSubmitRequest(json::parseJson("[]")), std::runtime_error);
  EXPECT_THROW(parseSubmitRequest(json::parseJson("{}")), std::runtime_error);
  EXPECT_THROW(parseSubmitRequest(json::parseJson(
                   R"({"workflow":"montage:0.2"})")),
               std::runtime_error);
  EXPECT_THROW(parseSubmitRequest(json::parseJson(
                   R"({"workflow":"montage:0.2","scenarios":[]})")),
               std::runtime_error);
  EXPECT_THROW(parseSubmitRequest(json::parseJson(
                   R"({"workflow":"montage:0.2","scenarios":[1]})")),
               std::runtime_error);
  EXPECT_THROW(
      parseSubmitRequest(json::parseJson(
          R"({"workflow":"montage:0.2","scenarios":[{"mode":"bogus"}]})")),
      std::runtime_error);
  EXPECT_THROW(
      parseSubmitRequest(json::parseJson(
          R"({"workflow":"montage:0.2","scenarios":[{"processors":0}]})")),
      std::runtime_error);
}

TEST(ScenarioResultJson, MatchesBatchRunByteForByte) {
  const dag::Workflow wf = loadWorkflowSpec("montage:0.2");
  runner::ScenarioSpec spec;
  spec.workflow = &wf;
  spec.config.processors = 4;
  spec.label = "golden";
  const auto results = runner::runScenarios({spec});
  const cloud::Pricing pricing = cloud::Pricing::amazon2008();

  const json::JsonValue one = scenarioResultToJson(results[0], pricing);
  EXPECT_EQ(one.at("index").asNumber(), 0.0);
  EXPECT_EQ(one.at("label").asString(), "golden");
  EXPECT_FALSE(one.at("from_cache").asBool());
  EXPECT_EQ(one.at("mode").asString(), "regular");
  EXPECT_EQ(one.at("processors").asNumber(), 4.0);
  EXPECT_EQ(one.at("makespan_seconds").asNumber(),
            results[0].result.makespanSeconds);
  EXPECT_TRUE(one.at("completed").asBool());
  EXPECT_GT(one.at("cost").at("total_usd").asNumber(), 0.0);

  // The serializer is pure: two renderings of the same result are
  // byte-identical — the server-vs-batch golden comparison relies on it.
  EXPECT_EQ(json::dumpJson(scenarioResultsToJson(results, pricing)),
            json::dumpJson(scenarioResultsToJson(results, pricing)));
}

}  // namespace
}  // namespace mcsim::serve
