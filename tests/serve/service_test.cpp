// SimulationService: the transport-independent server core.  The headline
// contracts under test: per-request results byte-identical to an equivalent
// runScenarios batch (including with >= 8 concurrent in-flight requests),
// backpressure as a retryable refusal, per-request event isolation, and a
// live Prometheus exposition.
#include "mcsim/serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mcsim/serve/protocol.hpp"

namespace mcsim::serve {
namespace {

json::JsonValue submitVerb(const std::string& workflow,
                           const std::vector<int>& procs,
                           bool events = false) {
  json::JsonArray scenarios;
  for (int p : procs) {
    json::JsonObject s;
    s["mode"] = std::string("regular");
    s["processors"] = p;
    scenarios.push_back(json::JsonValue(std::move(s)));
  }
  json::JsonObject request;
  request["workflow"] = workflow;
  request["scenarios"] = std::move(scenarios);
  if (events) request["events"] = true;
  json::JsonObject verb;
  verb["verb"] = std::string("submit");
  verb["request"] = std::move(request);
  return json::JsonValue(std::move(verb));
}

json::JsonValue jobVerb(const std::string& verb, double job) {
  json::JsonObject o;
  o["verb"] = verb;
  o["job"] = job;
  return json::JsonValue(std::move(o));
}

/// Strip the `from_cache` provenance flag from a results array: whether a
/// request was served from the shared server cache depends on how warm it
/// was, but every simulated value must stay byte-identical regardless.
json::JsonValue scrubProvenance(const json::JsonValue& results) {
  json::JsonArray scrubbed;
  for (const json::JsonValue& r : results.asArray()) {
    json::JsonObject o = r.asObject();
    o.erase("from_cache");
    scrubbed.push_back(json::JsonValue(std::move(o)));
  }
  return json::JsonValue(std::move(scrubbed));
}

/// The batch-mode golden for a submit of `procs` against `workflow`.
std::string batchGolden(const std::string& workflow,
                        const std::vector<int>& procs,
                        const cloud::Pricing& pricing) {
  const dag::Workflow wf = loadWorkflowSpec(workflow);
  std::vector<runner::ScenarioSpec> specs;
  for (int p : procs) {
    runner::ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = p;
    specs.push_back(spec);
  }
  return json::dumpJson(scrubProvenance(
      scenarioResultsToJson(runner::runScenarios(specs), pricing)));
}

TEST(SimulationService, PingAndUnknownVerb) {
  SimulationService service({.workers = 0});
  json::JsonObject ping;
  ping["verb"] = std::string("ping");
  ping["id"] = 7;
  const json::JsonValue pong = service.handle(json::JsonValue(ping));
  EXPECT_TRUE(pong.at("ok").asBool());
  EXPECT_EQ(pong.at("id").asNumber(), 7.0);
  EXPECT_EQ(pong.at("service").asString(), "mcsim-serve");

  json::JsonObject bogus;
  bogus["verb"] = std::string("frobnicate");
  const json::JsonValue err = service.handle(json::JsonValue(bogus));
  EXPECT_FALSE(err.at("ok").asBool());
  EXPECT_NE(err.at("error").asString().find("unknown verb"),
            std::string::npos);
  // handle() never throws, even on non-object requests.
  EXPECT_FALSE(service.handle(json::JsonValue(3.0)).at("ok").asBool());
}

TEST(SimulationService, SubmitResultMatchesBatchGolden) {
  SimulationService service({.workers = 2});
  const std::vector<int> procs = {1, 4};
  const json::JsonValue submitted =
      service.handle(submitVerb("montage:0.2", procs));
  ASSERT_TRUE(submitted.at("ok").asBool());
  EXPECT_EQ(submitted.at("scenarios").asNumber(), 2.0);

  const json::JsonValue reply =
      service.handle(jobVerb("result", submitted.at("job").asNumber()));
  ASSERT_TRUE(reply.at("ok").asBool());
  EXPECT_EQ(reply.at("state").asString(), "completed");
  EXPECT_EQ(json::dumpJson(scrubProvenance(reply.at("results"))),
            batchGolden("montage:0.2", procs, service.options().pricing));
}

TEST(SimulationService, EightConcurrentRequestsStayByteIdentical) {
  SimulationService service({.workers = 4, .maxQueuedJobs = 32});
  const std::vector<int> procs = {1, 2, 4};
  const std::string golden =
      batchGolden("montage:0.2", procs, service.options().pricing);

  constexpr int kRequests = 8;
  std::vector<double> jobs(kRequests, 0.0);
  for (int i = 0; i < kRequests; ++i) {
    const json::JsonValue submitted =
        service.handle(submitVerb("montage:0.2", procs));
    ASSERT_TRUE(submitted.at("ok").asBool()) << "request " << i;
    jobs[i] = submitted.at("job").asNumber();
  }
  // All eight are in flight before the first result is claimed; claim them
  // from concurrent threads like eight independent clients would.
  std::vector<std::string> rendered(kRequests);
  std::vector<std::thread> clients;
  for (int i = 0; i < kRequests; ++i) {
    clients.emplace_back([&, i] {
      const json::JsonValue reply =
          service.handle(jobVerb("result", jobs[i]));
      if (reply.at("ok").asBool() &&
          reply.at("state").asString() == "completed")
        rendered[i] = json::dumpJson(scrubProvenance(reply.at("results")));
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(rendered[i], golden);
  }
}

TEST(SimulationService, BackpressureIsRetryable) {
  // workers=1 and a depth-1 admission queue: hammering submits must produce
  // at least one {"ok":false,"retryable":true} refusal and zero crashes.
  SimulationService service({.workers = 1, .maxQueuedJobs = 1});
  int refused = 0;
  std::vector<double> jobs;
  for (int i = 0; i < 8; ++i) {
    const json::JsonValue reply =
        service.handle(submitVerb("montage:0.2", {1}));
    if (reply.at("ok").asBool()) {
      jobs.push_back(reply.at("job").asNumber());
    } else {
      EXPECT_EQ(reply.at("error").asString(), "queue full");
      EXPECT_TRUE(reply.at("retryable").asBool());
      ++refused;
    }
  }
  EXPECT_GT(refused, 0);
  for (double job : jobs) {
    const json::JsonValue reply = service.handle(jobVerb("result", job));
    EXPECT_TRUE(reply.at("ok").asBool());
  }
}

TEST(SimulationService, EventsComeBackIsolatedPerRequest) {
  SimulationService service({.workers = 2});
  const json::JsonValue with =
      service.handle(submitVerb("montage:0.2", {1}, /*events=*/true));
  const json::JsonValue without =
      service.handle(submitVerb("montage:0.2", {2}, /*events=*/false));
  ASSERT_TRUE(with.at("ok").asBool());
  ASSERT_TRUE(without.at("ok").asBool());

  const json::JsonValue withReply =
      service.handle(jobVerb("result", with.at("job").asNumber()));
  const json::JsonValue withoutReply =
      service.handle(jobVerb("result", without.at("job").asNumber()));
  ASSERT_TRUE(withReply.at("ok").asBool());
  // Only the events:true request carries a stream, and it is non-empty
  // JSONL (every line is an event object).
  ASSERT_TRUE(withReply.has("events_jsonl"));
  const std::string& jsonl = withReply.at("events_jsonl").asString();
  EXPECT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.front(), '{');
  EXPECT_FALSE(withoutReply.has("events_jsonl"));
}

TEST(SimulationService, StatusAndCancelVerbs) {
  SimulationService service({.workers = 1, .maxQueuedJobs = 8});
  const json::JsonValue a = service.handle(submitVerb("montage:0.2", {1, 2}));
  const json::JsonValue b = service.handle(submitVerb("montage:0.2", {1, 2}));
  ASSERT_TRUE(a.at("ok").asBool());
  ASSERT_TRUE(b.at("ok").asBool());

  const json::JsonValue status =
      service.handle(jobVerb("status", b.at("job").asNumber()));
  ASSERT_TRUE(status.at("ok").asBool());
  EXPECT_EQ(status.at("total_scenarios").asNumber(), 2.0);

  service.handle(jobVerb("cancel", b.at("job").asNumber()));
  const json::JsonValue bReply =
      service.handle(jobVerb("result", b.at("job").asNumber()));
  ASSERT_TRUE(bReply.at("ok").asBool());
  // b was either cancelled in time or had already completed; both are
  // legitimate, but nothing in between.
  const std::string& state = bReply.at("state").asString();
  EXPECT_TRUE(state == "cancelled" || state == "completed") << state;

  EXPECT_EQ(service
                .handle(jobVerb("result", a.at("job").asNumber()))
                .at("state")
                .asString(),
            "completed");

  // result on a retired id is an error reply, not a crash.
  EXPECT_FALSE(service.handle(jobVerb("result", a.at("job").asNumber()))
                   .at("ok")
                   .asBool());
  EXPECT_FALSE(service.handle(jobVerb("status", 0)).at("ok").asBool());
}

TEST(SimulationService, MetricsExposeCacheAndJobInstruments) {
  SimulationService service(
      {.workers = 2, .cache = runner::MemoCacheOptions{4, 0}});
  // Two identical submits: the second is served from the bounded cache.
  for (int i = 0; i < 2; ++i) {
    const json::JsonValue submitted =
        service.handle(submitVerb("montage:0.2", {1, 2}));
    ASSERT_TRUE(submitted.at("ok").asBool());
    service.handle(jobVerb("result", submitted.at("job").asNumber()));
  }
  const std::string text = service.metricsText();
  EXPECT_NE(text.find("mcsim_cache_hits 2"), std::string::npos) << text;
  EXPECT_NE(text.find("mcsim_cache_misses 2"), std::string::npos) << text;
  EXPECT_NE(text.find("mcsim_cache_entries 2"), std::string::npos) << text;
  EXPECT_NE(text.find("mcsim_cache_evictions"), std::string::npos);
  EXPECT_NE(text.find("mcsim_cache_bytes"), std::string::npos);
  EXPECT_NE(text.find("mcsim_jobs_submitted_total 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcsim_jobs_completed_total 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcsim_job_scenarios_total 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcsim_jobs_queued 0"), std::string::npos) << text;
}

}  // namespace
}  // namespace mcsim::serve
