#include "mcsim/workflows/gallery.hpp"

#include <gtest/gtest.h>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::workflows {
namespace {

TEST(CyberShake, Structure) {
  CyberShakeParams p;
  p.variations = 10;
  const dag::Workflow wf = buildCyberShake(p);
  // 3 tasks per variation + 2 zips.
  EXPECT_EQ(wf.taskCount(), 3u * 10u + 2u);
  EXPECT_EQ(wf.levelCount(), 4);  // extract, synth, peak/zipseis, zippsa
  EXPECT_EQ(wf.externalInputs().size(), 1u);   // master SGT
  EXPECT_EQ(wf.workflowOutputs().size(), 2u);  // the two zips
}

TEST(CyberShake, DataHeavyRegime) {
  // CyberShake is the high-CCR end of the spectrum: well above Montage.
  const dag::Workflow wf = buildCyberShake();
  const double ccr = wf.ccr(montage::kReferenceBandwidthBytesPerSec);
  EXPECT_GT(ccr, 0.5);
}

TEST(Epigenomics, Structure) {
  EpigenomicsParams p;
  p.chunks = 8;
  const dag::Workflow wf = buildEpigenomics(p);
  // split + 5*chunks (4 chain stages... filter,s2s,f2b,map) + merge + index
  // + pileup.
  EXPECT_EQ(wf.taskCount(), 1u + 4u * 8u + 3u);
  EXPECT_EQ(wf.levelCount(), 8);
  EXPECT_EQ(wf.workflowOutputs().size(), 1u);
}

TEST(Epigenomics, CpuBoundRegime) {
  const dag::Workflow wf = buildEpigenomics();
  const double ccr = wf.ccr(montage::kReferenceBandwidthBytesPerSec);
  EXPECT_LT(ccr, 0.1);  // alignment dominates: low CCR like Montage
}

TEST(Inspiral, Structure) {
  InspiralParams p;
  p.groups = 2;
  p.jobsPerGroup = 3;
  const dag::Workflow wf = buildInspiral(p);
  // Per group: 3 banks + 3 inspirals + thinca + 3 trigbanks + 3 inspiral2
  // + thinca2 = 14.
  EXPECT_EQ(wf.taskCount(), 2u * 14u);
  EXPECT_EQ(wf.levelCount(), 6);
  EXPECT_EQ(wf.workflowOutputs().size(), 2u);  // one coinc2 per group
}

TEST(Sipht, Structure) {
  SiphtParams p;
  p.patserJobs = 5;
  p.blastJobs = 4;
  const dag::Workflow wf = buildSipht(p);
  // 5 patser + concat + srna + 4 blast + annotate.
  EXPECT_EQ(wf.taskCount(), 5u + 1u + 1u + 4u + 1u);
  EXPECT_EQ(wf.workflowOutputs().size(), 1u);
}

TEST(Gallery, AllBuildAndValidate) {
  const auto gallery = buildGallery();
  ASSERT_EQ(gallery.size(), 4u);
  for (const dag::Workflow& wf : gallery) {
    EXPECT_GT(wf.taskCount(), 0u) << wf.name();
    EXPECT_EQ(dag::topologicalOrder(wf).size(), wf.taskCount()) << wf.name();
    EXPECT_FALSE(wf.externalInputs().empty()) << wf.name();
    EXPECT_FALSE(wf.workflowOutputs().empty()) << wf.name();
  }
}

TEST(Gallery, Deterministic) {
  const dag::Workflow a = buildCyberShake();
  const dag::Workflow b = buildCyberShake();
  EXPECT_DOUBLE_EQ(a.totalFileBytes().value(), b.totalFileBytes().value());
  for (dag::TaskId t = 0; t < a.taskCount(); ++t)
    EXPECT_EQ(a.task(t).parents, b.task(t).parents);
}

TEST(Gallery, SpansTheCcrSpectrum) {
  // The gallery exists to cover the regimes Fig 11 sweeps synthetically:
  // CPU-bound pipelines through data-heavy fan-outs.
  const double b = montage::kReferenceBandwidthBytesPerSec;
  const double epigenomics = buildEpigenomics().ccr(b);
  const double inspiral = buildInspiral().ccr(b);
  const double montage1 = montage::buildMontageWorkflow(1.0).ccr(b);
  const double cybershake = buildCyberShake().ccr(b);
  EXPECT_LT(epigenomics, montage1 + 0.05);  // both CPU-bound (CCR << 1)
  EXPECT_LT(inspiral, cybershake);
  EXPECT_GT(cybershake, 10.0 * montage1);
}

TEST(Gallery, RunsThroughEngineInEveryMode) {
  for (const dag::Workflow& wf : buildGallery()) {
    for (engine::DataMode mode :
         {engine::DataMode::RemoteIO, engine::DataMode::Regular,
          engine::DataMode::DynamicCleanup}) {
      engine::EngineConfig cfg;
      cfg.mode = mode;
      cfg.processors = 8;
      const auto r = engine::simulateWorkflow(wf, cfg);
      EXPECT_EQ(r.tasksExecuted, wf.taskCount())
          << wf.name() << "/" << engine::dataModeName(mode);
      EXPECT_NEAR(r.cpuBusySeconds, wf.totalRuntimeSeconds(), 1e-6)
          << wf.name();
    }
  }
}

TEST(Gallery, CleanupHelpsEveryWorkflow) {
  for (const dag::Workflow& wf : buildGallery()) {
    engine::EngineConfig cfg;
    cfg.processors = 8;
    cfg.mode = engine::DataMode::Regular;
    const auto reg = engine::simulateWorkflow(wf, cfg);
    cfg.mode = engine::DataMode::DynamicCleanup;
    const auto cln = engine::simulateWorkflow(wf, cfg);
    EXPECT_LT(cln.storageByteSeconds, reg.storageByteSeconds) << wf.name();
  }
}

TEST(Gallery, InvalidParamsRejected) {
  CyberShakeParams cs;
  cs.variations = 0;
  EXPECT_THROW(buildCyberShake(cs), std::invalid_argument);
  EpigenomicsParams epi;
  epi.chunks = 0;
  EXPECT_THROW(buildEpigenomics(epi), std::invalid_argument);
  InspiralParams insp;
  insp.groups = 0;
  EXPECT_THROW(buildInspiral(insp), std::invalid_argument);
  SiphtParams sipht;
  sipht.patserJobs = 0;
  EXPECT_THROW(buildSipht(sipht), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::workflows
