// Scale-tier smoke test (`ctest -L scale`, Release only): a 10^5-task
// survey campaign must stream-build and simulate inside a generous
// wall-clock budget and RSS ceiling.  The budgets are an order of
// magnitude above the measured numbers (BENCH_scale.json: ~0.2 s build,
// ~0.1 s sim, ~100 MiB) so the test catches complexity regressions —
// an accidental O(n^2) pass or a deep-copy cascade — not machine noise.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <chrono>

#include "mcsim/engine/engine.hpp"
#include "mcsim/workflows/survey.hpp"

namespace mcsim::workflows {
namespace {

std::size_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

TEST(SurveyScale, HundredThousandTaskCampaignWithinBudgets) {
#ifndef NDEBUG
  GTEST_SKIP() << "scale tier runs on Release builds only (unoptimized "
                  "builds and sanitizers blow the wall-clock budget)";
#endif
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kTargetTasks = 100000;
  constexpr double kBuildBudgetSeconds = 20.0;
  constexpr double kSimBudgetSeconds = 20.0;
  constexpr std::size_t kRssCeilingBytes = 2ull << 30;  // 2 GiB

  SurveyConfig cfg;
  cfg.name = "scale-smoke";
  const std::uint64_t tasksPerTile = surveyCounts(cfg).tasksPerTile;
  cfg.tiles = (kTargetTasks + tasksPerTile - 1) / tasksPerTile;
  cfg.seed = 1;

  const auto t0 = Clock::now();
  const dag::Workflow wf = buildSurveyCampaign(cfg);
  const double buildSeconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ASSERT_GE(wf.taskCount(), kTargetTasks);
  EXPECT_LT(buildSeconds, kBuildBudgetSeconds)
      << "streaming build of " << wf.taskCount() << " tasks too slow";

  engine::EngineConfig config;
  config.processors = 64;
  const auto t1 = Clock::now();
  const engine::ExecutionResult result = engine::simulateWorkflow(wf, config);
  const double simSeconds =
      std::chrono::duration<double>(Clock::now() - t1).count();
  EXPECT_EQ(result.tasksExecuted, wf.taskCount());
  EXPECT_TRUE(result.completed());
  EXPECT_LT(simSeconds, kSimBudgetSeconds)
      << "simulating " << wf.taskCount() << " tasks too slow";

  const std::size_t rss = peakRssBytes();
  if (rss > 0)
    EXPECT_LT(rss, kRssCeilingBytes)
        << "peak RSS " << (rss >> 20) << " MiB over the scale-tier ceiling";
}

}  // namespace
}  // namespace mcsim::workflows
