// SurveyConfig fuzzing, the survey-side extension of the DAX fuzz
// harness: randomized and adversarial configurations must either produce
// a campaign matching the closed-form counts or come back as a graceful
// Expected error — never a crash, hang, overflow or half-built graph.
#include <gtest/gtest.h>

#include <climits>
#include <cmath>
#include <limits>
#include <string>

#include "mcsim/util/expected.hpp"
#include "mcsim/util/rng.hpp"
#include "mcsim/workflows/survey.hpp"

namespace mcsim::workflows {
namespace {

/// Random config mixing in-range and out-of-range fields: roughly half of
/// the draws are deliberately hostile.
SurveyConfig randomConfig(std::uint64_t seed) {
  Rng rng(seed);
  SurveyConfig cfg;
  cfg.name = "fuzz";
  switch (rng.uniformInt(0, 5)) {
    case 0: cfg.tiles = 0; break;  // invalid
    case 1: cfg.tiles = 1; break;
    case 2: cfg.tiles = static_cast<std::uint64_t>(rng.uniformInt(2, 24)); break;
    case 3: cfg.tiles = static_cast<std::uint64_t>(INT_MAX) - 1; break;
    case 4: cfg.tiles = static_cast<std::uint64_t>(INT_MAX) + 1; break;
    default: cfg.tiles = ~0ull; break;  // id-space overflow
  }
  cfg.tileCols = static_cast<std::uint32_t>(rng.uniformInt(0, 5));
  switch (rng.uniformInt(0, 3)) {
    case 0: cfg.tileDegrees = 0.0; break;  // invalid
    case 1: cfg.tileDegrees = -1.0; break;  // invalid
    case 2: cfg.tileDegrees = 1.0; break;
    default: cfg.tileDegrees = 17.0; break;  // invalid (> 16)
  }
  switch (rng.uniformInt(0, 3)) {
    case 0: cfg.overlapFraction = 0.0; break;
    case 1: cfg.overlapFraction = 0.5; break;  // degenerate but legal
    case 2: cfg.overlapFraction = -0.1; break;  // invalid
    default: cfg.overlapFraction = 0.9; break;  // invalid (> 0.5)
  }
  switch (rng.uniformInt(0, 3)) {
    case 0: cfg.runtimeJitterFraction = 0.0; break;
    case 1: cfg.runtimeJitterFraction = 0.45; break;
    case 2: cfg.runtimeJitterFraction = 0.89; break;  // legal, infeasible CCR
    default: cfg.runtimeJitterFraction = 1.5; break;  // invalid
  }
  switch (rng.uniformInt(0, 2)) {
    case 0: cfg.releaseIntervalSeconds = 0.0; break;
    case 1: cfg.releaseIntervalSeconds = 3600.0; break;
    default: cfg.releaseIntervalSeconds = -1.0; break;  // invalid
  }
  cfg.seed = seed;
  return cfg;
}

class SurveyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SurveyFuzz,
                         ::testing::Range<std::uint64_t>(500, 564));

TEST_P(SurveyFuzz, EveryConfigEitherBuildsOrFailsGracefully) {
  SurveyConfig cfg = randomConfig(GetParam());
  // Keep fuzz workloads bounded: hostile tile counts are rejected during
  // validation, never built.
  const Expected<dag::Workflow> result = trySurveyCampaign(cfg);
  if (!result) {
    EXPECT_FALSE(result.error().empty());
    return;
  }
  const SurveyCounts counts = surveyCounts(cfg);
  ASSERT_LE(counts.tasks, 30000u)
      << "a buildable fuzz config should be small";
  EXPECT_EQ(result->taskCount(), counts.tasks);
  EXPECT_EQ(result->fileCount(), counts.files);
}

TEST_P(SurveyFuzz, ValidationAgreesWithTryOutcome) {
  const SurveyConfig cfg = randomConfig(GetParam());
  const std::string error = validateSurveyConfig(cfg);
  const Expected<dag::Workflow> result = trySurveyCampaign(cfg);
  EXPECT_EQ(error.empty(), result.hasValue())
      << "validate said '" << error << "'";
}

TEST(SurveyFuzzEdge, ZeroTilesIsAGracefulError) {
  SurveyConfig cfg;
  cfg.tiles = 0;
  const auto result = trySurveyCampaign(cfg);
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("tiles"), std::string::npos);
}

TEST(SurveyFuzzEdge, OneTileBuildsTheSingleTileGraph) {
  SurveyConfig cfg;
  cfg.tiles = 1;
  const auto result = trySurveyCampaign(cfg);
  ASSERT_TRUE(result.hasValue()) << result.error();
  const SurveyCounts counts = surveyCounts(cfg);
  EXPECT_EQ(result->taskCount(), counts.tasksPerTile);
  EXPECT_EQ(result->fileCount(), counts.filesPerTile);
}

TEST(SurveyFuzzEdge, DegenerateOverlapBoundsAreExact) {
  SurveyConfig cfg;
  cfg.tiles = 4;
  cfg.tileCols = 2;
  cfg.overlapFraction = 0.5;  // half of each tile's raws shared
  ASSERT_TRUE(trySurveyCampaign(cfg).hasValue());
  cfg.overlapFraction = std::nextafter(0.5, 1.0);
  EXPECT_FALSE(trySurveyCampaign(cfg).hasValue());
  cfg.overlapFraction = -0.0;  // negative zero is still zero
  EXPECT_TRUE(trySurveyCampaign(cfg).hasValue());
}

TEST(SurveyFuzzEdge, IdSpaceOverflowIsRejectedNotWrapped) {
  SurveyConfig cfg;
  cfg.tiles = static_cast<std::uint64_t>(INT_MAX) + 1;
  const auto result = trySurveyCampaign(cfg);
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("id space"), std::string::npos);
  cfg.tiles = ~0ull;
  EXPECT_FALSE(trySurveyCampaign(cfg).hasValue());
}

TEST(SurveyFuzzEdge, InfeasibleCcrCalibrationNamesTheProblem) {
  SurveyConfig cfg;
  cfg.tiles = 2;
  cfg.runtimeJitterFraction = 0.9;  // worst-case tile CPU can't cover fixed bytes
  const auto result = trySurveyCampaign(cfg);
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("CCR"), std::string::npos);
}

TEST(SurveyFuzzEdge, TileDegreesBoundsAreEnforced) {
  SurveyConfig cfg;
  cfg.tiles = 1;
  for (double degrees : {0.0, -1.0, 16.5, 1e300,
                         std::numeric_limits<double>::quiet_NaN()}) {
    cfg.tileDegrees = degrees;
    EXPECT_FALSE(trySurveyCampaign(cfg).hasValue()) << degrees;
  }
}

}  // namespace
}  // namespace mcsim::workflows
