// Parameterized scaling sweeps over the gallery generators: structure must
// scale predictably and every scale must run cleanly through the engine.
#include <gtest/gtest.h>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::workflows {
namespace {

class CyberShakeScale : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Variations, CyberShakeScale,
                         ::testing::Values(1, 5, 40, 200));

TEST_P(CyberShakeScale, StructureScalesLinearly) {
  CyberShakeParams p;
  p.variations = GetParam();
  const dag::Workflow wf = buildCyberShake(p);
  EXPECT_EQ(wf.taskCount(), 3u * static_cast<std::size_t>(GetParam()) + 2u);
  // Widest level: the extraction fan-out.
  EXPECT_GE(dag::maxParallelism(wf),
            static_cast<std::size_t>(GetParam()));
}

TEST_P(CyberShakeScale, DataVolumeScalesWithVariations) {
  CyberShakeParams p;
  p.variations = GetParam();
  const dag::Workflow wf = buildCyberShake(p);
  // Each variation contributes one SGT extraction (the dominant bytes).
  EXPECT_GT(wf.totalFileBytes().value(),
            p.sgtBytes.value() * static_cast<double>(GetParam()));
}

class EpigenomicsScale : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Chunks, EpigenomicsScale,
                         ::testing::Values(1, 4, 25, 100));

TEST_P(EpigenomicsScale, PipelineCountTracksChunks) {
  EpigenomicsParams p;
  p.chunks = GetParam();
  const dag::Workflow wf = buildEpigenomics(p);
  EXPECT_EQ(wf.taskCount(), 4u * static_cast<std::size_t>(GetParam()) + 4u);
  EXPECT_EQ(wf.levelCount(), 8);
  // The chains are independent until the merge.
  EXPECT_GE(dag::maxParallelism(wf), static_cast<std::size_t>(GetParam()));
}

TEST_P(EpigenomicsScale, SpeedupTracksChunks) {
  // More chunks = more parallelism: at P=chunks the makespan approaches the
  // chain critical path.
  EpigenomicsParams p;
  p.chunks = GetParam();
  const dag::Workflow wf = buildEpigenomics(p);
  engine::EngineConfig cfg;
  cfg.processors = GetParam();
  const auto r = engine::simulateWorkflow(wf, cfg);
  EXPECT_LT(r.makespanSeconds,
            dag::criticalPathSeconds(wf) + wf.totalRuntimeSeconds() /
                                               GetParam() +
                3600.0);
}

class InspiralScale
    : public ::testing::TestWithParam<std::pair<int, int>> {};
INSTANTIATE_TEST_SUITE_P(Shapes, InspiralScale,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 5),
                                           std::make_pair(5, 9),
                                           std::make_pair(10, 3)));

TEST_P(InspiralScale, GroupStructure) {
  const auto [groups, jobs] = GetParam();
  InspiralParams p;
  p.groups = groups;
  p.jobsPerGroup = jobs;
  const dag::Workflow wf = buildInspiral(p);
  EXPECT_EQ(wf.taskCount(),
            static_cast<std::size_t>(groups) * (4u * jobs + 2u));
  EXPECT_EQ(wf.workflowOutputs().size(), static_cast<std::size_t>(groups));
  EXPECT_EQ(wf.levelCount(), 6);
}

TEST_P(InspiralScale, RunsThroughEngine) {
  const auto [groups, jobs] = GetParam();
  InspiralParams p;
  p.groups = groups;
  p.jobsPerGroup = jobs;
  const dag::Workflow wf = buildInspiral(p);
  engine::EngineConfig cfg;
  cfg.processors = 8;
  const auto r = engine::simulateWorkflow(wf, cfg);
  EXPECT_EQ(r.tasksExecuted, wf.taskCount());
}

class SiphtScale
    : public ::testing::TestWithParam<std::pair<int, int>> {};
INSTANTIATE_TEST_SUITE_P(Shapes, SiphtScale,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(22, 8),
                                           std::make_pair(50, 16)));

TEST_P(SiphtScale, FanInStructure) {
  const auto [patser, blast] = GetParam();
  SiphtParams p;
  p.patserJobs = patser;
  p.blastJobs = blast;
  const dag::Workflow wf = buildSipht(p);
  EXPECT_EQ(wf.taskCount(),
            static_cast<std::size_t>(patser) + blast + 3u);
  EXPECT_EQ(wf.workflowOutputs().size(), 1u);
}

}  // namespace
}  // namespace mcsim::workflows
