// Survey differential tests: the streaming campaign builder must agree
// with the naive reference paths — tile-by-tile construction merged
// through dag::mergeWorkflows, and dag::replicateWorkflow for uniform
// campaigns — structurally and through the engine, including under fault
// injection.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mcsim/dag/merge.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/workflows/survey.hpp"

namespace mcsim::workflows {
namespace {

void expectIdenticalGraphs(const dag::Workflow& a, const dag::Workflow& b) {
  ASSERT_EQ(a.taskCount(), b.taskCount());
  ASSERT_EQ(a.fileCount(), b.fileCount());
  for (std::size_t i = 0; i < a.taskCount(); ++i) {
    const dag::Task& x = a.task(static_cast<dag::TaskId>(i));
    const dag::Task& y = b.task(static_cast<dag::TaskId>(i));
    ASSERT_EQ(x.name, y.name);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.runtimeSeconds, y.runtimeSeconds);
    EXPECT_EQ(x.earliestStartSeconds, y.earliestStartSeconds);
    EXPECT_EQ(x.inputs, y.inputs);
    EXPECT_EQ(x.outputs, y.outputs);
    EXPECT_EQ(x.parents, y.parents);
    EXPECT_EQ(x.children, y.children);
    EXPECT_EQ(x.level, y.level);
  }
  for (std::size_t i = 0; i < a.fileCount(); ++i) {
    const dag::File& x = a.file(static_cast<dag::FileId>(i));
    const dag::File& y = b.file(static_cast<dag::FileId>(i));
    ASSERT_EQ(x.name, y.name);
    EXPECT_EQ(x.size.value(), y.size.value());
    EXPECT_EQ(x.producer, y.producer);
    EXPECT_EQ(x.consumers, y.consumers);
    EXPECT_EQ(x.explicitOutput, y.explicitOutput);
  }
}

void expectSimEquivalent(const dag::Workflow& a, const dag::Workflow& b,
                         const engine::EngineConfig& config) {
  const engine::ExecutionResult ra = engine::simulateWorkflow(a, config);
  const engine::ExecutionResult rb = engine::simulateWorkflow(b, config);
  EXPECT_EQ(ra.tasksExecuted, rb.tasksExecuted);
  EXPECT_EQ(ra.completed(), rb.completed());
  EXPECT_NEAR(ra.makespanSeconds, rb.makespanSeconds,
              1e-6 * rb.makespanSeconds);
  EXPECT_NEAR(ra.cpuBusySeconds, rb.cpuBusySeconds,
              1e-6 * rb.cpuBusySeconds);
  EXPECT_NEAR(ra.bytesIn.value(), rb.bytesIn.value(),
              1e-6 * rb.bytesIn.value());
  EXPECT_NEAR(ra.bytesOut.value(), rb.bytesOut.value(),
              1e-6 * rb.bytesOut.value());
}

class SurveyDifferential : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Tiles, SurveyDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

TEST_P(SurveyDifferential, StreamingMatchesMergeReferenceExactly) {
  SurveyConfig cfg;
  cfg.name = "diff";
  cfg.tiles = GetParam();
  cfg.seed = 99;
  cfg.runtimeJitterFraction = 0.4;
  const dag::Workflow streaming = buildSurveyCampaign(cfg);
  const dag::Workflow reference = buildSurveyCampaignReference(cfg);
  expectIdenticalGraphs(streaming, reference);
}

TEST_P(SurveyDifferential, StreamingMatchesStaggeredReferenceWithReleases) {
  SurveyConfig cfg;
  cfg.name = "diff";
  cfg.tiles = GetParam();
  cfg.seed = 7;
  cfg.runtimeJitterFraction = 0.25;
  cfg.releaseIntervalSeconds = 300.0;
  const dag::Workflow streaming = buildSurveyCampaign(cfg);
  const dag::Workflow reference = buildSurveyCampaignReference(cfg);
  expectIdenticalGraphs(streaming, reference);
}

TEST_P(SurveyDifferential, SimulationAgreesWithReference) {
  SurveyConfig cfg;
  cfg.name = "diff";
  cfg.tiles = GetParam();
  cfg.seed = 4;
  cfg.runtimeJitterFraction = 0.5;
  cfg.releaseIntervalSeconds = 120.0;
  const dag::Workflow streaming = buildSurveyCampaign(cfg);
  const dag::Workflow reference = buildSurveyCampaignReference(cfg);

  engine::EngineConfig config;
  config.processors = 16;
  expectSimEquivalent(streaming, reference, config);
  config.mode = engine::DataMode::DynamicCleanup;
  expectSimEquivalent(streaming, reference, config);
}

TEST_P(SurveyDifferential, SimulationAgreesUnderFaultInjection) {
  SurveyConfig cfg;
  cfg.name = "diff";
  cfg.tiles = GetParam();
  cfg.seed = 4;
  cfg.runtimeJitterFraction = 0.3;
  const dag::Workflow streaming = buildSurveyCampaign(cfg);
  const dag::Workflow reference = buildSurveyCampaignReference(cfg);

  engine::EngineConfig config;
  config.processors = 8;
  config.taskFailureProbability = 0.05;
  config.failureSeed = 11;
  // Identical graphs draw identical fault streams, so the results must
  // agree to the same tolerance as the fault-free runs.
  expectSimEquivalent(streaming, reference, config);
}

TEST_P(SurveyDifferential, UniformCampaignSimulatesLikeReplicateWorkflow) {
  // With jitter 0 every tile is the same graph, so replicateWorkflow of
  // one tile is simulation-equivalent (names differ: req<i>/ vs t<i>/).
  SurveyConfig cfg;
  cfg.name = "diff";
  cfg.tiles = GetParam();
  cfg.seed = 21;
  const dag::Workflow streaming = buildSurveyCampaign(cfg);
  const dag::Workflow replicated = dag::replicateWorkflow(
      buildSurveyTile(cfg, 0), static_cast<int>(cfg.tiles), cfg.name);
  ASSERT_EQ(streaming.taskCount(), replicated.taskCount());
  ASSERT_EQ(streaming.fileCount(), replicated.fileCount());

  engine::EngineConfig config;
  config.processors = 16;
  expectSimEquivalent(streaming, replicated, config);
}

TEST(SurveyDifferentialEdge, OverlapSharingRewiresConsumersAcrossTiles) {
  SurveyConfig cfg;
  cfg.name = "overlap";
  cfg.tiles = 4;
  cfg.tileCols = 2;
  cfg.overlapFraction = 0.3;
  const SurveyCounts counts = surveyCounts(cfg);
  ASSERT_GT(counts.sharedRawsPerEdge, 0u);
  const dag::Workflow wf = buildSurveyCampaign(cfg);
  EXPECT_EQ(wf.taskCount(), counts.tasks);
  EXPECT_EQ(wf.fileCount(), counts.files);

  // Shared raws are consumed by mProject tasks of two adjacent tiles.
  std::size_t crossTileRaws = 0;
  for (const dag::File& f : wf.files())
    if (f.producer == dag::kNoTask && f.consumers.size() == 2)
      ++crossTileRaws;
  EXPECT_EQ(crossTileRaws, counts.sharedFiles);

  // The reference path cannot express sharing and must refuse.
  EXPECT_THROW(buildSurveyCampaignReference(cfg), std::invalid_argument);
  EXPECT_THROW(buildSurveyShards(cfg, 2), std::invalid_argument);
}

TEST(SurveyDifferentialEdge, ShardsPartitionTheCampaignExactly) {
  SurveyConfig cfg;
  cfg.name = "sharded";
  cfg.tiles = 11;
  cfg.seed = 5;
  cfg.runtimeJitterFraction = 0.4;
  const dag::Workflow whole = buildSurveyCampaign(cfg);
  const std::vector<dag::Workflow> shards = buildSurveyShards(cfg, 3);
  ASSERT_EQ(shards.size(), 3u);

  std::size_t tasks = 0;
  double runtime = 0.0;
  for (const dag::Workflow& s : shards) {
    tasks += s.taskCount();
    runtime += s.totalRuntimeSeconds();
  }
  EXPECT_EQ(tasks, whole.taskCount());
  // Tile content is a pure function of (seed, tile), so sharding must not
  // perturb total work.
  EXPECT_NEAR(runtime, whole.totalRuntimeSeconds(),
              1e-9 * whole.totalRuntimeSeconds());
}

}  // namespace
}  // namespace mcsim::workflows
