// Cross-module integration: DAX persistence feeding the engine, the planner
// driving real sweeps, and trace rendering on real runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "mcsim/analysis/economics.hpp"
#include "mcsim/analysis/planner.hpp"
#include "mcsim/dag/dax.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/engine/trace.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

TEST(EndToEnd, DaxRoundTripPreservesSimulationResults) {
  const dag::Workflow original = montage::buildMontageWorkflow(1.0);
  const dag::Workflow reloaded = dag::readDax(dag::writeDax(original));

  engine::EngineConfig cfg;
  cfg.processors = 8;
  for (engine::DataMode mode :
       {engine::DataMode::RemoteIO, engine::DataMode::Regular,
        engine::DataMode::DynamicCleanup}) {
    cfg.mode = mode;
    const auto a = engine::simulateWorkflow(original, cfg);
    const auto b = engine::simulateWorkflow(reloaded, cfg);
    EXPECT_NEAR(a.makespanSeconds, b.makespanSeconds, 1e-6)
        << engine::dataModeName(mode);
    EXPECT_NEAR(a.storageByteSeconds, b.storageByteSeconds, 1.0);
    EXPECT_NEAR(a.bytesIn.value(), b.bytesIn.value(), 1.0);
    EXPECT_NEAR(a.bytesOut.value(), b.bytesOut.value(), 1.0);
  }
}

TEST(EndToEnd, DaxFileOnDiskDrivesPlanner) {
  const std::string path = ::testing::TempDir() + "/montage1.dax";
  dag::writeDaxFile(montage::buildMontageWorkflow(1.0), path);
  const dag::Workflow wf = dag::readDaxFile(path);

  analysis::PlannerGoal goal;
  goal.deadlineSeconds = 2.0 * kSecondsPerHour;
  const auto rec =
      analysis::recommendProvisioning(wf, kAmazon, goal,
                                      analysis::ProvisioningSweepConfig{.processorCounts = {1, 4, 16, 64}});
  EXPECT_TRUE(rec.feasible);
  EXPECT_LE(rec.choice.makespanSeconds, goal.deadlineSeconds);
  std::remove(path.c_str());
}

TEST(EndToEnd, TraceRenderingOnRealRun) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  engine::EngineConfig cfg;
  cfg.processors = 16;
  cfg.trace = true;
  const auto result = engine::simulateWorkflow(wf, cfg);

  std::ostringstream levels;
  engine::printLevelSummary(levels, wf, result);
  // All nine Montage routines appear in the level summary.
  for (const char* routine :
       {"mProject", "mDiffFit", "mConcatFit", "mBgModel", "mBackground",
        "mImgtbl", "mAdd", "mShrink", "mJPEG"}) {
    EXPECT_NE(levels.str().find(routine), std::string::npos) << routine;
  }

  std::ostringstream gantt;
  engine::printGantt(gantt, wf, result, 20, 60);
  EXPECT_NE(gantt.str().find('#'), std::string::npos);

  const std::string summary = engine::summarize(wf, result);
  EXPECT_NE(summary.find("montage-1deg"), std::string::npos);
  EXPECT_NE(summary.find("16 proc"), std::string::npos);
}

TEST(EndToEnd, TraceHelpersRejectUntracedResults) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  engine::EngineConfig cfg;
  cfg.processors = 4;
  const auto result = engine::simulateWorkflow(wf, cfg);
  std::ostringstream os;
  EXPECT_THROW(engine::printLevelSummary(os, wf, result),
               std::invalid_argument);
  EXPECT_THROW(engine::printGantt(os, wf, result), std::invalid_argument);
  // summarize works without tracing.
  EXPECT_FALSE(engine::summarize(wf, result).empty());
}

TEST(EndToEnd, FeeStructureFlipsDataModeRanking) {
  // The paper's conjecture (§6 Q2a): "If the storage charges were higher
  // and transfer costs were lower, it is possible that the Remote I/O mode
  // would have resulted in the least total cost of the three."
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const auto amazonRows = analysis::dataModeComparison(
      wf, kAmazon, analysis::DataModeComparisonConfig{});
  EXPECT_GT(amazonRows[0].dataManagementCost(),
            amazonRows[2].dataManagementCost());  // remote > cleanup

  const auto flippedRows = analysis::dataModeComparison(
      wf, cloud::Pricing::storageHeavyProvider(),
      analysis::DataModeComparisonConfig{});
  EXPECT_LT(flippedRows[0].dataManagementCost(),
            flippedRows[1].dataManagementCost());  // remote < regular
}

TEST(EndToEnd, CustomWorkflowThroughWholeStack) {
  // A user-built (non-Montage) workflow runs through sweep, comparison and
  // economics without any Montage-specific assumptions.
  dag::Workflow wf("custom-pipeline");
  const dag::FileId raw = wf.addFile("raw.dat", Bytes::fromGB(1.0));
  const dag::TaskId split = wf.addTask("split", "split", 60.0);
  wf.addInput(split, raw);
  std::vector<dag::FileId> shards;
  for (int i = 0; i < 6; ++i) {
    const dag::FileId s =
        wf.addFile("shard" + std::to_string(i), Bytes::fromMB(150.0));
    wf.addOutput(split, s);
    shards.push_back(s);
  }
  const dag::TaskId merge = wf.addTask("merge", "merge", 120.0);
  for (dag::FileId s : shards) {
    const dag::TaskId t = wf.addTask("proc" + std::to_string(s), "proc", 300.0);
    wf.addInput(t, s);
    const dag::FileId o =
        wf.addFile("out" + std::to_string(s), Bytes::fromMB(80.0));
    wf.addOutput(t, o);
    wf.addInput(merge, o);
  }
  const dag::FileId product = wf.addFile("product", Bytes::fromMB(200.0));
  wf.addOutput(merge, product);
  wf.finalize();

  const auto pts = analysis::provisioningSweep(
      wf, kAmazon, {.processorCounts = {1, 2, 6}});
  EXPECT_LT(pts[2].makespanSeconds, pts[0].makespanSeconds);
  const auto rows = analysis::dataModeComparison(
      wf, kAmazon, analysis::DataModeComparisonConfig{});
  EXPECT_EQ(rows.size(), 3u);
  const auto decision = analysis::mosaicArchivalDecision(
      rows[1].cpuCost, Bytes::fromMB(200.0), kAmazon);
  EXPECT_GT(decision.breakEvenMonths, 0.0);
}

}  // namespace
}  // namespace mcsim
