// Paper-vs-measured: every quantitative anchor the paper publishes, checked
// end-to-end through the generator + engine + pricing stack.  Tolerances are
// generous where the paper itself is approximate ("almost $4", "about 1
// hour") and tight where it is exact.
#include <gtest/gtest.h>

#include "mcsim/analysis/economics.hpp"
#include "mcsim/analysis/experiments.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::analysis {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

double hours(double seconds) { return seconds / kSecondsPerHour; }

const ProvisioningPoint& pointFor(const std::vector<ProvisioningPoint>& pts,
                                  int procs) {
  for (const auto& p : pts)
    if (p.processors == procs) return p;
  throw std::logic_error("no such processor count in sweep");
}

// ---------------------------------------------------------------- Figure 4
TEST(PaperFig4, Montage1DegreeEndpoints) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto pts = provisioningSweep(wf, kAmazon, {.processorCounts = {1, 16, 128}});

  // "when only one processor is provisioned ... the longest execution time
  // of 5.5 hours" and "60 cents for the 1 processor computation".
  const auto& p1 = pointFor(pts, 1);
  EXPECT_NEAR(hours(p1.makespanSeconds), 5.5, 0.6);
  EXPECT_NEAR(p1.totalCost.value(), 0.60, 0.10);

  // "The runtime on 128 processors is only 18 minutes" ... "almost 4$".
  const auto& p128 = pointFor(pts, 128);
  EXPECT_NEAR(p128.makespanSeconds / 60.0, 18.0, 9.0);
  EXPECT_NEAR(p128.totalCost.value(), 4.0, 2.0);
}

TEST(PaperFig4, StorageCostsNegligibleAndCleanupSlightlyLess) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto pts = provisioningSweep(wf, kAmazon, {.processorCounts = {1, 8, 128}});
  for (const auto& p : pts) {
    // "the storage costs are negligible as compared to the other costs."
    EXPECT_LT(p.storageCost.value(), 0.02 * p.totalCost.value());
    // "The storage costs with cleanup are slightly less."
    EXPECT_LT(p.storageCleanupCost, p.storageCost);
    EXPECT_GT(p.storageCleanupCost, p.storageCost * 0.2);
  }
}

TEST(PaperFig4, TotalCostRisesMakespanFalls) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto pts = provisioningSweep(
      wf, kAmazon, {.processorCounts = defaultProcessorLadder()});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].totalCost, pts[i - 1].totalCost) << pts[i].processors;
    EXPECT_LE(pts[i].makespanSeconds, pts[i - 1].makespanSeconds + 1e-6);
  }
}

// ---------------------------------------------------------------- Figure 5
TEST(PaperFig5, Montage2DegreeEndpoints) {
  const auto wf = montage::buildMontageWorkflow(2.0);
  const auto pts = provisioningSweep(wf, kAmazon, {.processorCounts = {1, 128}});
  // "the cost of running the workflow on 1 processor is $2.25 with a
  // runtime of 20.5 hours".
  const auto& p1 = pointFor(pts, 1);
  EXPECT_NEAR(hours(p1.makespanSeconds), 20.5, 1.5);
  EXPECT_NEAR(p1.totalCost.value(), 2.25, 0.25);
  // "128 processors results in a runtime of less than 40 minutes with a
  // cost of less than $8".
  const auto& p128 = pointFor(pts, 128);
  EXPECT_LT(p128.makespanSeconds, 40.0 * 60.0);
  EXPECT_LT(p128.totalCost.value(), 8.0);
}

// ---------------------------------------------------------------- Figure 6
TEST(PaperFig6, Montage4DegreeEndpoints) {
  const auto wf = montage::buildMontageWorkflow(4.0);
  const auto pts = provisioningSweep(wf, kAmazon, {.processorCounts = {1, 16, 128}});
  // "running on 1 processor costs $9 with a runtime of 85 hours".
  const auto& p1 = pointFor(pts, 1);
  EXPECT_NEAR(hours(p1.makespanSeconds), 85.0, 5.0);
  EXPECT_NEAR(p1.totalCost.value(), 9.0, 0.8);
  // "with 128 processors, the runtime decreases to 1 hour with a cost of
  // almost $14."
  const auto& p128 = pointFor(pts, 128);
  EXPECT_NEAR(hours(p128.makespanSeconds), 1.0, 0.6);
  EXPECT_NEAR(p128.totalCost.value(), 14.0, 7.0);
  // "If the application provisions 16 processors ... approximately 5.5
  // hours with a cost of $9.25".
  const auto& p16 = pointFor(pts, 16);
  EXPECT_NEAR(hours(p16.makespanSeconds), 5.5, 1.5);
  EXPECT_NEAR(p16.totalCost.value(), 9.25, 1.5);
}

TEST(PaperQ1Service, FiveHundredMosaics) {
  // "providing 500 4-degree square mosaics ... $4,500 using 1 processor
  // versus $7,000 using 128 processors ... a total cost of 500 mosaics
  // would be $4,625 [16 procs]."
  const auto wf = montage::buildMontageWorkflow(4.0);
  const auto pts = provisioningSweep(wf, kAmazon, {.processorCounts = {1, 16, 128}});
  EXPECT_NEAR(pointFor(pts, 1).totalCost.value() * 500.0, 4500.0, 450.0);
  EXPECT_NEAR(pointFor(pts, 16).totalCost.value() * 500.0, 4625.0, 700.0);
  EXPECT_NEAR(pointFor(pts, 128).totalCost.value() * 500.0, 7000.0, 3500.0);
}

// ------------------------------------------------------------- Figures 7-10
TEST(PaperFig10, CpuCostsExact) {
  // Fig 10's CPU bars: $0.56 / $2.03 / $8.40 (usage billing).
  for (const auto& [deg, cpu] :
       std::vector<std::pair<double, double>>{{1.0, 0.56}, {2.0, 2.03},
                                              {4.0, 8.40}}) {
    const auto wf = montage::buildMontageWorkflow(deg);
    const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
    for (const auto& row : rows)
      EXPECT_NEAR(row.cpuCost.value(), cpu, 1e-6) << deg << " degrees";
  }
}

TEST(PaperFig10, RemoteIoDmSlightlyBelowCpu) {
  // "the CPU cost is slightly higher than the data management costs for the
  // remote I/O execution mode."
  for (double deg : {1.0, 2.0}) {
    const auto wf = montage::buildMontageWorkflow(deg);
    const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
    const auto& remote = rows[0];
    EXPECT_LT(remote.dataManagementCost(), remote.cpuCost) << deg;
    EXPECT_GT(remote.dataManagementCost(), remote.cpuCost * 0.4) << deg;
  }
}

TEST(PaperFig10, TwoDegreeRegularTotals) {
  // Q2b: "The cost of producing a 2 degree square mosaic when the input
  // data are already available in the cloud is $2.12 ... The cost of the
  // mosaic that has to bring in the data from outside the cloud is $2.22."
  const auto wf = montage::buildMontageWorkflow(2.0);
  const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
  const auto& regular = rows[1];
  EXPECT_NEAR(regular.totalCost().value(), 2.22, 0.12);
  const Money preStaged = regular.totalCost() - regular.transferInCost;
  EXPECT_NEAR(preStaged.value(), 2.12, 0.12);
}

TEST(PaperFig10, FourDegreeRegularTotals) {
  // Q3: "The cost of creating a 4 degrees square mosaic in regular mode was
  // $8.88 ... if the input data is already archived ... $8.75."
  const auto wf = montage::buildMontageWorkflow(4.0);
  const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
  const auto& regular = rows[1];
  EXPECT_NEAR(regular.totalCost().value(), 8.88, 0.45);
  const Money preStaged = regular.totalCost() - regular.transferInCost;
  EXPECT_NEAR(preStaged.value(), 8.75, 0.45);
}

TEST(PaperFig7to9, ProvisionedVsUsageGap) {
  // §6 Q2a: "the cost of running the 4 degree square Montage workflow on
  // 128 processors is $13.92 in the provisioned case, whereas the workflow
  // which is charged only for the resources used is only $8.89."
  const auto wf = montage::buildMontageWorkflow(4.0);
  const auto provisioned = provisioningSweep(wf, kAmazon, {.processorCounts = {128}})[0];
  const auto usage = dataModeComparison(wf, kAmazon, {.processorOverride = 128})[1];
  EXPECT_GT(provisioned.totalCost, usage.totalCost());
  EXPECT_NEAR(usage.totalCost().value(), 8.89, 0.5);
}

// ---------------------------------------------------------------- Figure 11
TEST(PaperFig11, CostsIncreaseWithCcr) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  const auto pts =
      ccrSweep(wf, kAmazon,
               {.ccrTargets = {0.053, 0.1, 0.2, 0.4, 0.8, 1.6}});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].totalCost, pts[i - 1].totalCost);
    EXPECT_GT(pts[i].storageCost, pts[i - 1].storageCost);
    EXPECT_GT(pts[i].transferCost, pts[i - 1].transferCost);
  }
}

// --------------------------------------------------------------- Question 2b
TEST(PaperQ2b, ArchiveBreakEvenFromSimulatedCosts) {
  // Rebuild the paper's 18,000-mosaics-per-month figure from *simulated*
  // request costs rather than quoted ones.
  const auto wf = montage::buildMontageWorkflow(2.0);
  const auto regular = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{})[1];
  const Money onDemand = regular.totalCost();
  const Money preStaged = onDemand - regular.transferInCost;
  const ArchiveEconomics e =
      archiveBreakEven(Bytes::fromTB(12.0), preStaged, onDemand, kAmazon);
  EXPECT_NEAR(e.monthlyStorageCost.value(), 1800.0, 1e-9);
  // Saving per request is the stage-in cost (~$0.07-0.13 around the paper's
  // $0.10), so break-even lands in the paper's ballpark.
  EXPECT_GT(e.breakEvenRequestsPerMonth, 10000.0);
  EXPECT_LT(e.breakEvenRequestsPerMonth, 30000.0);
}

// --------------------------------------------------------------- Question 3
TEST(PaperQ3, WholeSkyFromSimulatedCosts) {
  const auto wf = montage::buildMontageWorkflow(4.0);
  const auto regular = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{})[1];
  const Money onDemand = regular.totalCost();
  const Money preStaged = onDemand - regular.transferInCost;
  const SkyCampaignCost sky = skyCampaign(3900, onDemand, preStaged);
  EXPECT_NEAR(sky.totalOnDemand.value(), 34632.0, 1800.0);
  EXPECT_NEAR(sky.totalPreStaged.value(), 34125.0, 1800.0);
}

TEST(PaperQ3, ArchivalBreakEvensFromSimulatedCpuCosts) {
  // 21.52 / 24.25 / 25.12 months, built from the simulated CPU costs and
  // the preset mosaic sizes.
  const std::vector<std::tuple<double, double>> expectations = {
      {1.0, 21.52}, {2.0, 24.25}, {4.0, 25.12}};
  for (const auto& [deg, months] : expectations) {
    const auto params = montage::paramsForDegrees(deg);
    const auto wf = montage::buildMontageWorkflow(params);
    const auto rows = dataModeComparison(wf, kAmazon, DataModeComparisonConfig{});
    const ArchivalDecision d =
        mosaicArchivalDecision(rows[1].cpuCost, params.mosaicBytes, kAmazon);
    EXPECT_NEAR(d.breakEvenMonths, months, 0.05) << deg << " degrees";
  }
}

}  // namespace
}  // namespace mcsim::analysis
