#include "mcsim/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mcsim::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.hasPending());
  EXPECT_EQ(sim.processedEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule(30.0, [&] { fired.push_back(3); });
  sim.schedule(10.0, [&] { fired.push_back(1); });
  sim.schedule(20.0, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
  EXPECT_EQ(sim.processedEvents(), 3u);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    sim.schedule(5.0, [&fired, i] { fired.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(Simulator, NowAdvancesDuringCallbacks) {
  Simulator sim;
  double observed = -1.0;
  sim.schedule(7.5, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 7.5);
}

TEST(Simulator, CallbacksMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.scheduleAfter(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(10.0, [&] {
    EXPECT_THROW(sim.schedule(5.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.scheduleAfter(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, Callback{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.processedEvents(), 0u);
}

TEST(Simulator, CancelReturnsFalseForFiredOrUnknown) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));          // already fired
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(999999));      // never existed
}

TEST(Simulator, DoubleCancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
}

TEST(Simulator, CancelOneOfManyAtSameTime) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule(1.0, [&] { fired.push_back(0); });
  const EventId id = sim.schedule(1.0, [&] { fired.push_back(1); });
  sim.schedule(1.0, [&] { fired.push_back(2); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(2.0, [&] { fired.push_back(2.0); });
  sim.schedule(5.0, [&] { fired.push_back(5.0); });
  sim.runUntil(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_TRUE(sim.hasPending());
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilIncludesEventsAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule(3.0, [&] { fired = true; });
  sim.runUntil(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilWithOnlyCancelledEvents) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.cancel(id);
  sim.runUntil(10.0);
  EXPECT_FALSE(sim.hasPending());
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule(t, [&last, &sim] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 10000u);
}

}  // namespace
}  // namespace mcsim::sim
