// Compatibility coverage for the deprecated positional sim/cloud
// constructors: each must keep behaving exactly like the config-struct
// constructor it wraps until removal (see DESIGN.md deprecation schedule).
// This file is the one place that intentionally calls them, so the
// deprecation warnings are silenced here.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mcsim/cloud/storage.hpp"
#include "mcsim/sim/link.hpp"
#include "mcsim/sim/simulator.hpp"

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace mcsim {
namespace {

/// Drive a small fair-share workload and record each completion time.
std::vector<double> transferFinishTimes(sim::Simulator& simulator,
                                        sim::Link& link) {
  std::vector<double> times;
  for (double bytes : {500.0, 1500.0, 1000.0})
    link.startTransfer(Bytes(bytes),
                       [&times, &simulator] { times.push_back(simulator.now()); });
  simulator.run();
  return times;
}

TEST(DeprecatedCtors, PositionalLinkMatchesConfigCtor) {
  sim::Simulator legacySim;
  sim::Link legacy(legacySim, 100.0, sim::LinkSharing::FairShare);
  const auto legacyTimes = transferFinishTimes(legacySim, legacy);

  sim::Simulator currentSim;
  sim::Link current(currentSim,
                    sim::LinkConfig{.bandwidthBytesPerSec = 100.0,
                                    .sharing = sim::LinkSharing::FairShare});
  const auto currentTimes = transferFinishTimes(currentSim, current);

  EXPECT_EQ(legacyTimes, currentTimes);
  EXPECT_EQ(legacy.sharing(), current.sharing());
  EXPECT_EQ(legacy.schedule(), current.schedule());
}

TEST(DeprecatedCtors, PositionalLinkDefaultsToFairShare) {
  sim::Simulator simulator;
  sim::Link link(simulator, 100.0);
  EXPECT_EQ(link.sharing(), sim::LinkSharing::FairShare);
  EXPECT_EQ(link.schedule(), sim::LinkSchedule::Incremental);
}

TEST(DeprecatedCtors, PositionalLinkValidatesLikeConfigCtor) {
  sim::Simulator simulator;
  EXPECT_THROW(sim::Link(simulator, 0.0), std::invalid_argument);
  EXPECT_THROW(sim::Link(simulator, -1.0), std::invalid_argument);
}

TEST(DeprecatedCtors, BytesCapacityStorageMatchesConfigCtor) {
  sim::Simulator legacySim;
  cloud::StorageService legacy(legacySim, Bytes::fromMB(10.0));
  sim::Simulator currentSim;
  cloud::StorageService current(
      currentSim,
      cloud::StorageConfig{.capacityBytes = Bytes::fromMB(10.0).value()});

  for (cloud::StorageService* s : {&legacy, &current}) {
    s->put(1, Bytes::fromMB(8.0));
    EXPECT_THROW(s->put(2, Bytes::fromMB(5.0)), std::runtime_error);
    EXPECT_DOUBLE_EQ(s->residentBytes().mb(), 8.0);
  }
}

TEST(DeprecatedCtors, BytesCapacityStorageValidatesLikeConfigCtor) {
  sim::Simulator simulator;
  EXPECT_THROW(cloud::StorageService(simulator, Bytes(0.0)),
               std::invalid_argument);
  EXPECT_THROW(cloud::StorageService(simulator, Bytes(-1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcsim
