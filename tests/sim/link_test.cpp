#include "mcsim/sim/link.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace mcsim::sim {
namespace {

class LinkTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(LinkTest, SingleTransferTakesSizeOverBandwidth) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});  // 100 B/s
  double done = -1.0;
  link.startTransfer(Bytes(500.0), [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(link.totalBytesTransferred().value(), 500.0);
  EXPECT_EQ(link.completedTransfers(), 1u);
  EXPECT_EQ(link.activeTransfers(), 0u);
}

TEST_F(LinkTest, FairShareTwoEqualTransfersFinishTogether) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0,
                            .sharing = LinkSharing::FairShare});
  std::vector<double> done;
  link.startTransfer(Bytes(500.0), [&] { done.push_back(sim.now()); });
  link.startTransfer(Bytes(500.0), [&] { done.push_back(sim.now()); });
  sim.run();
  // Each gets 50 B/s: both finish at t=10 (total bytes / full bandwidth).
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST_F(LinkTest, FairShareBatchTimeEqualsTotalOverBandwidth) {
  // The stage-in property the engine relies on: N concurrent files take
  // sum(sizes)/B regardless of how sizes are distributed.
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 1000.0});
  double lastDone = 0.0;
  double total = 0.0;
  for (double size : {100.0, 900.0, 2500.0, 1500.0}) {
    total += size;
    link.startTransfer(Bytes(size), [&] { lastDone = sim.now(); });
  }
  sim.run();
  EXPECT_NEAR(lastDone, total / 1000.0, 1e-9);
}

TEST_F(LinkTest, FairShareUnequalSizesAnalytic) {
  // 300 B and 900 B at 100 B/s sharing fairly:
  //   phase 1: both at 50 B/s; small one finishes at t = 300/50 = 6
  //   phase 2: big one has 900-300=600 left at 100 B/s: t = 6 + 6 = 12.
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double small = -1.0, big = -1.0;
  link.startTransfer(Bytes(300.0), [&] { small = sim.now(); });
  link.startTransfer(Bytes(900.0), [&] { big = sim.now(); });
  sim.run();
  EXPECT_NEAR(small, 6.0, 1e-9);
  EXPECT_NEAR(big, 12.0, 1e-9);
}

TEST_F(LinkTest, LateArrivalSharesRemaining) {
  // t=0: A(1000) alone at 100 B/s.  t=5: A has 500 left; B(500) arrives.
  // Both at 50 B/s: A finishes at 5 + 10 = 15, B at 5 + 10 = 15.
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double aDone = -1.0, bDone = -1.0;
  link.startTransfer(Bytes(1000.0), [&] { aDone = sim.now(); });
  sim.schedule(5.0, [&] {
    link.startTransfer(Bytes(500.0), [&] { bDone = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(aDone, 15.0, 1e-9);
  EXPECT_NEAR(bDone, 15.0, 1e-9);
}

TEST_F(LinkTest, DedicatedTransfersDoNotContend) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0,
                            .sharing = LinkSharing::Dedicated});
  std::vector<double> done;
  link.startTransfer(Bytes(500.0), [&] { done.push_back(sim.now()); });
  link.startTransfer(Bytes(1000.0), [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 5.0, 1e-9);
  EXPECT_NEAR(done[1], 10.0, 1e-9);
}

TEST_F(LinkTest, ZeroByteTransferCompletesImmediately) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double done = -1.0;
  link.startTransfer(Bytes(0.0), [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST_F(LinkTest, CompletionHandlerMayStartNextTransfer) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double secondDone = -1.0;
  link.startTransfer(Bytes(100.0), [&] {
    link.startTransfer(Bytes(200.0), [&] { secondDone = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(secondDone, 3.0, 1e-9);
  EXPECT_EQ(link.completedTransfers(), 2u);
}

TEST_F(LinkTest, SuspendStopsProgress) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double done = -1.0;
  link.startTransfer(Bytes(1000.0), [&] { done = sim.now(); });
  // Outage [4, 7): 3 seconds of no progress; completes at 10 + 3 = 13.
  sim.schedule(4.0, [&] { link.suspend(); });
  sim.schedule(7.0, [&] { link.resume(); });
  sim.run();
  EXPECT_NEAR(done, 13.0, 1e-9);
}

TEST_F(LinkTest, SuspendResumeIdempotent) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double done = -1.0;
  link.startTransfer(Bytes(100.0), [&] { done = sim.now(); });
  sim.schedule(0.5, [&] {
    link.suspend();
    link.suspend();  // no-op
    EXPECT_TRUE(link.suspended());
  });
  sim.schedule(1.0, [&] {
    link.resume();
    link.resume();  // no-op
    EXPECT_FALSE(link.suspended());
  });
  sim.run();
  EXPECT_NEAR(done, 1.5, 1e-9);
}

TEST_F(LinkTest, TransferStartedWhileSuspendedWaits) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  double done = -1.0;
  link.suspend();
  link.startTransfer(Bytes(100.0), [&] { done = sim.now(); });
  sim.schedule(10.0, [&] { link.resume(); });
  sim.run();
  EXPECT_NEAR(done, 11.0, 1e-9);
}

TEST_F(LinkTest, InvalidArgumentsRejected) {
  EXPECT_THROW(Link(sim, LinkConfig{.bandwidthBytesPerSec = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, LinkConfig{.bandwidthBytesPerSec = -5.0}),
               std::invalid_argument);
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 100.0});
  EXPECT_THROW(link.startTransfer(Bytes(-1.0), [] {}), std::invalid_argument);
  EXPECT_THROW(link.startTransfer(Bytes(1.0), nullptr), std::invalid_argument);
}

TEST_F(LinkTest, ManyConcurrentTransfersConserveBytes) {
  Link link(sim, LinkConfig{.bandwidthBytesPerSec = 1.25e6});
  const int n = 200;
  int completed = 0;
  double totalBytes = 0.0;
  for (int i = 0; i < n; ++i) {
    const double size = 1000.0 * (i + 1);
    totalBytes += size;
    link.startTransfer(Bytes(size), [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(link.totalBytesTransferred().value(), totalBytes, 1.0);
  EXPECT_NEAR(sim.now(), totalBytes / 1.25e6, 1e-6);
}

}  // namespace
}  // namespace mcsim::sim
