// Arena-calendar-specific coverage: in-place cancellation, slot reuse,
// FIFO tie-breaking under heavy churn, and equivalence against the
// Reference (priority_queue + tombstones) calendar, which must produce a
// byte-identical event stream for any schedule/cancel workload.
#include "mcsim/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mcsim/obs/sink.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::sim {
namespace {

TEST(ArenaCalendar, IsTheDefaultImplementation) {
  Simulator simulator;
  EXPECT_EQ(simulator.calendar(), CalendarImpl::ArenaHeap);
  Simulator reference(SimulatorOptions{.calendar = CalendarImpl::Reference});
  EXPECT_EQ(reference.calendar(), CalendarImpl::Reference);
}

TEST(ArenaCalendar, CancelRemovesInPlace) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.schedule(1.0, [&] { fired.push_back(1); });
  const EventId doomed = simulator.schedule(2.0, [&] { fired.push_back(2); });
  simulator.schedule(3.0, [&] { fired.push_back(3); });

  EXPECT_TRUE(simulator.cancel(doomed));
  EXPECT_FALSE(simulator.cancel(doomed));  // already cancelled
  simulator.run();

  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  // A cancelled event never fires, so it is not counted as processed.
  EXPECT_EQ(simulator.processedEvents(), 2u);
}

TEST(ArenaCalendar, SlotsAreReusedAcrossGenerations) {
  // Pending events never exceed 2, so the arena should stay tiny even
  // though thousands of events pass through; ids keep growing (they are
  // never recycled) while slots are.
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5000) simulator.scheduleAfter(1.0, chain);
  };
  simulator.schedule(0.0, chain);
  simulator.run();
  EXPECT_EQ(fired, 5000);
  EXPECT_EQ(simulator.processedEvents(), 5000u);
  EXPECT_DOUBLE_EQ(simulator.now(), 4999.0);
}

TEST(ArenaCalendar, SameTimeEventsFireInScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i)
    simulator.schedule(7.5, [&order, i] { order.push_back(i); });
  simulator.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ArenaCalendar, FifoOrderSurvivesInterleavedCancellation) {
  // Cancel every third same-time event: the survivors must still fire in
  // their original schedule order, even though heap removals move slots.
  Simulator simulator;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 30; ++i)
    ids.push_back(simulator.schedule(1.0, [&order, i] { order.push_back(i); }));
  for (int i = 0; i < 30; i += 3) EXPECT_TRUE(simulator.cancel(ids[i]));
  simulator.run();
  std::vector<int> expected;
  for (int i = 0; i < 30; ++i)
    if (i % 3 != 0) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(ArenaCalendar, CancelRejectsForeignAndFiredIds) {
  Simulator simulator;
  EXPECT_FALSE(simulator.cancel(kInvalidEvent));
  EXPECT_FALSE(simulator.cancel(EventId{999999}));  // never issued
  const EventId id = simulator.schedule(1.0, [] {});
  simulator.run();
  EXPECT_FALSE(simulator.cancel(id));  // already fired
}

/// Deterministic mixed workload: schedules bursts at clustered times,
/// cancels a pseudo-random third of pending events, reschedules from
/// callbacks.  Returns the (time, sequence) trace of fired events.
std::vector<std::pair<double, int>> churn(Simulator& simulator) {
  std::vector<std::pair<double, int>> trace;
  Rng rng(42);
  std::vector<EventId> pending;
  int counter = 0;
  for (int burst = 0; burst < 20; ++burst) {
    const double base = burst * 10.0;
    for (int i = 0; i < 50; ++i) {
      const double t = base + rng.uniformInt(0, 9);
      const int tag = counter++;
      pending.push_back(simulator.schedule(t, [&trace, &simulator, tag] {
        trace.emplace_back(simulator.now(), tag);
      }));
    }
    for (std::size_t k = 0; k < pending.size(); k += 3)
      simulator.cancel(pending[k]);
    simulator.runUntil(base + 5.0);
  }
  simulator.run();
  return trace;
}

TEST(ArenaCalendar, MatchesReferenceCalendarUnderChurn) {
  Simulator arena(SimulatorOptions{.calendar = CalendarImpl::ArenaHeap});
  Simulator reference(SimulatorOptions{.calendar = CalendarImpl::Reference});
  const auto arenaTrace = churn(arena);
  const auto referenceTrace = churn(reference);
  EXPECT_EQ(arenaTrace, referenceTrace);
  EXPECT_EQ(arena.processedEvents(), reference.processedEvents());
  EXPECT_DOUBLE_EQ(arena.now(), reference.now());
}

TEST(ArenaCalendar, TelemetryStreamMatchesReference) {
  auto record = [](CalendarImpl impl) {
    obs::CollectingSink sink;
    Simulator simulator(SimulatorOptions{.calendar = impl});
    simulator.setObserver(&sink);
    churn(simulator);
    return sink.take();
  };
  const auto arenaEvents = record(CalendarImpl::ArenaHeap);
  const auto referenceEvents = record(CalendarImpl::Reference);
  ASSERT_EQ(arenaEvents.size(), referenceEvents.size());
  for (std::size_t i = 0; i < arenaEvents.size(); ++i) {
    EXPECT_EQ(arenaEvents[i].time, referenceEvents[i].time) << i;
    EXPECT_EQ(arenaEvents[i].payload.index(), referenceEvents[i].payload.index())
        << i;
  }
}

TEST(EventFnSbo, LargeCallablesFallBackToHeapCorrectly) {
  // A callable bigger than the inline buffer must still move and fire.
  Simulator simulator;
  struct Big {
    double pad[16];
    std::vector<int>* out;
    void operator()() const { out->push_back(static_cast<int>(pad[0])); }
  };
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    Big big{};
    big.pad[0] = i;
    big.out = &fired;
    simulator.schedule(static_cast<double>(i), big);
  }
  simulator.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace mcsim::sim
