#include "mcsim/sim/processor_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace mcsim::sim {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(PoolTest, GrantsUpToCapacity) {
  ProcessorPool pool(sim, 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  sim.run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.busy(), 2);
  EXPECT_EQ(pool.idle(), 0);
  EXPECT_EQ(pool.queuedRequests(), 1u);
}

TEST_F(PoolTest, ReleaseGrantsNextWaiterFifo) {
  ProcessorPool pool(sim, 1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  pool.release();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  pool.release();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(PoolTest, ReleaseWithoutAcquireThrows) {
  ProcessorPool pool(sim, 1);
  EXPECT_THROW(pool.release(), std::logic_error);
}

TEST_F(PoolTest, InvalidConstruction) {
  EXPECT_THROW(ProcessorPool(sim, 0), std::invalid_argument);
  EXPECT_THROW(ProcessorPool(sim, -3), std::invalid_argument);
}

TEST_F(PoolTest, EmptyHandlerRejected) {
  ProcessorPool pool(sim, 1);
  EXPECT_THROW(pool.acquire(nullptr), std::invalid_argument);
}

TEST_F(PoolTest, BusyIntegralTracksOccupancy) {
  ProcessorPool pool(sim, 2);
  // Occupy both processors for disjoint intervals via scheduled work.
  pool.acquire([&] {
    sim.scheduleAfter(10.0, [&] { pool.release(); });
  });
  pool.acquire([&] {
    sim.scheduleAfter(4.0, [&] { pool.release(); });
  });
  sim.run();
  // 2 busy for 4 s, 1 busy for 6 s = 14 processor-seconds.
  EXPECT_NEAR(pool.busyProcessorSeconds(), 14.0, 1e-9);
  EXPECT_EQ(pool.busy(), 0);
}

TEST_F(PoolTest, SimultaneousAcquiresNeverOverGrant) {
  ProcessorPool pool(sim, 3);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 10; ++i) {
    pool.acquire([&] {
      ++concurrent;
      peak = std::max(peak, concurrent);
      sim.scheduleAfter(1.0, [&] {
        --concurrent;
        pool.release();
      });
    });
  }
  sim.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(pool.busy(), 0);
  // Ten 1-second holds on 3 processors: 10 processor-seconds total.
  EXPECT_NEAR(pool.busyProcessorSeconds(), 10.0, 1e-9);
}

TEST_F(PoolTest, SizeAccessors) {
  ProcessorPool pool(sim, 5);
  EXPECT_EQ(pool.size(), 5);
  EXPECT_EQ(pool.busy(), 0);
  EXPECT_EQ(pool.idle(), 5);
}

}  // namespace
}  // namespace mcsim::sim
