#include "mcsim/obs/jsonl.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/common/json.hpp"

namespace mcsim::obs {
namespace {

std::string render(const Event& event) {
  std::ostringstream os;
  writeEventJson(os, event);
  return os.str();
}

TEST(EventJson, CarriesTimeAndTypeAndPayloadFields) {
  const test::JsonValue v =
      test::parseJson(render(Event{12.5, TransferFinished{7, 2048.0, 3.25}}));
  EXPECT_DOUBLE_EQ(v.at("t").asNumber(), 12.5);
  EXPECT_EQ(v.at("type").asString(), "transfer_finished");
  EXPECT_DOUBLE_EQ(v.at("transfer").asNumber(), 7.0);
  EXPECT_DOUBLE_EQ(v.at("bytes").asNumber(), 2048.0);
  EXPECT_DOUBLE_EQ(v.at("seconds").asNumber(), 3.25);
}

TEST(EventJson, NoTaskRendersAsNull) {
  const test::JsonValue v = test::parseJson(
      render(Event{0.0, StageInStarted{3, kNoTask, 1e6}}));
  EXPECT_EQ(v.at("type").asString(), "stage_in_started");
  EXPECT_TRUE(v.at("task").isNull());
  EXPECT_DOUBLE_EQ(v.at("file").asNumber(), 3.0);

  const test::JsonValue attributed = test::parseJson(
      render(Event{0.0, StageInStarted{3, 42, 1e6}}));
  EXPECT_DOUBLE_EQ(attributed.at("task").asNumber(), 42.0);
}

TEST(EventJson, BillingLineItemNamesItsResource) {
  const test::JsonValue v = test::parseJson(
      render(Event{5.0, BillingLineItem{Resource::Storage, 9, 1234.5}}));
  EXPECT_EQ(v.at("type").asString(), "billing_line_item");
  EXPECT_EQ(v.at("resource").asString(), "storage");
  EXPECT_DOUBLE_EQ(v.at("task").asNumber(), 9.0);
  EXPECT_DOUBLE_EQ(v.at("quantity").asNumber(), 1234.5);
}

TEST(EventJson, LogMessagesAreEscaped) {
  const test::JsonValue v = test::parseJson(render(
      Event{-1.0, LogEmitted{2, "said \"hi\"\nthen\tleft \\o/"}}));
  EXPECT_EQ(v.at("type").asString(), "log");
  EXPECT_EQ(v.at("level").asNumber(), 2.0);
  EXPECT_EQ(v.at("message").asString(), "said \"hi\"\nthen\tleft \\o/");
  EXPECT_DOUBLE_EQ(v.at("t").asNumber(), -1.0);
}

TEST(EventJson, EveryPayloadAlternativeSerializesToValidJson) {
  const std::vector<Event> one_of_each = {
      {0.0, SimEventScheduled{1, 2.0}},
      {0.0, SimEventFired{1}},
      {0.0, SimEventCancelled{1}},
      {0.0, TransferStarted{1, 10.0, 2}},
      {0.0, TransferProgress{1, 5.0}},
      {0.0, TransferFinished{1, 10.0, 1.0}},
      {0.0, LinkShareChanged{2, 625000.0}},
      {0.0, LinkSuspended{}},
      {0.0, LinkResumed{}},
      {0.0, ProcessorClaimed{1, 4, 0}},
      {0.0, ProcessorReleased{0, 4, 0}},
      {0.0, ProcessorQueued{3}},
      {0.0, StorageFilePut{1, 10.0, 10.0, 1}},
      {0.0, StorageFileErased{1, 10.0, 0.0, 0}},
      {0.0, StorageSampled{0.0, 0}},
      {0.0, RunStarted{7, 8, 2}},
      {0.0, RunFinished{100.0}},
      {0.0, TaskReady{1}},
      {0.0, TaskStarted{1}},
      {0.0, TaskExecStarted{1}},
      {0.0, TaskFinished{1, 10.0}},
      {0.0, TaskRetried{1}},
      {0.0, TaskBlocked{1}},
      {0.0, StageInStarted{1, kNoTask, 10.0}},
      {0.0, StageInFinished{1, kNoTask, 10.0}},
      {0.0, StageOutStarted{1, 2, 10.0}},
      {0.0, StageOutFinished{1, 2, 10.0}},
      {0.0, FileCleanupDeleted{1, 2, 10.0}},
      {0.0, BillingLineItem{Resource::Cpu, 1, 10.0}},
      {-1.0, LogEmitted{0, "x"}},
      {0.0, ProcessorCrashed{1, 4.5}},
      {0.0, TaskRetryScheduled{1, 2, 30.0}},
      {0.0, TaskFailed{1, 3}},
      {0.0, TaskAbandoned{2, 1}},
      {0.0, StorageOutageStarted{}},
      {0.0, StorageOutageEnded{}},
      {0.0, DeadlineExceeded{5}},
      {0.0, ScenarioCacheStats{3, 1, 4, 2, 4096, 0.75}},
      {0.0, PhaseProfile{2, 0.125}},
      {0.0, WorkerProfile{0, 5, 0.75, 1.0}},
      {0.0, RunnerBatchProfile{4, 20, 3, 1.5}},
      {0.0, ShardCompleted{0, 4, 812, 3600.0}},
      {0.0, CampaignCompleted{4, 3248, 3600.0, 80640.0}},
      {-1.0, JobSubmitted{1, 16, 2}},
      {-1.0, JobStarted{1}},
      {-1.0, JobFinished{1, 2, 16, 4}},
  };
  ASSERT_EQ(one_of_each.size(), kEventKindCount);
  for (const Event& e : one_of_each) {
    const std::string line = render(e);
    const test::JsonValue v = test::parseJson(line);
    EXPECT_EQ(v.at("type").asString(), eventName(kind(e))) << line;
  }
}

TEST(JsonlSink, OneLinePerEvent) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.onEvent(Event{0.0, TaskReady{1}});
  sink.onEvent(Event{1.0, TaskStarted{1}});
  EXPECT_EQ(sink.written(), 2u);

  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    test::parseJson(line);  // throws on malformed output
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace mcsim::obs
