#include "mcsim/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mcsim::obs {
namespace {

TEST(Histogram, BucketsValuesByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive)
  h.observe(7.0);    // <= 10
  h.observe(1000.0); // +Inf
  ASSERT_EQ(h.bucketCounts().size(), 4u);
  EXPECT_EQ(h.bucketCounts()[0], 2u);
  EXPECT_EQ(h.bucketCounts()[1], 1u);
  EXPECT_EQ(h.bucketCounts()[2], 0u);
  EXPECT_EQ(h.bucketCounts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1008.5 / 4.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, FindOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("mcsim_x_total", "x");
  Counter& b = reg.counter("mcsim_x_total", "x");
  EXPECT_EQ(&a, &b);
  a.increment(2.0);
  EXPECT_DOUBLE_EQ(b.value(), 2.0);
  EXPECT_EQ(reg.instrumentCount(), 1u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("mcsim_x_total", "x");
  EXPECT_THROW(reg.gauge("mcsim_x_total", "x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("mcsim_x_total", "x", {1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("mcsim_runs_total", "Completed runs").increment(3.0);
  reg.gauge("mcsim_depth", "Queue depth").set(7.0);
  Histogram& h = reg.histogram("mcsim_wait_seconds", "Wait times", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);

  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string out = os.str();

  EXPECT_NE(out.find("# HELP mcsim_runs_total Completed runs\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE mcsim_runs_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_runs_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE mcsim_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_depth 7\n"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == count.
  EXPECT_NE(out.find("mcsim_wait_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mcsim_wait_seconds_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mcsim_wait_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("mcsim_wait_seconds_sum 103.5\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_wait_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsSink, DerivesInstrumentsFromEvents) {
  MetricsRegistry reg;
  MetricsSink sink(reg);

  sink.onEvent(Event{0.0, SimEventScheduled{1, 5.0}});
  sink.onEvent(Event{0.0, TransferStarted{1, 2048.0, 1}});
  sink.onEvent(Event{2.0, TransferFinished{1, 2048.0, 2.0}});
  sink.onEvent(Event{2.0, TaskReady{7}});
  sink.onEvent(Event{5.0, TaskStarted{7}});   // waited 3 s
  sink.onEvent(Event{5.0, TaskExecStarted{7}});
  sink.onEvent(Event{15.0, TaskFinished{7, 10.0}});
  sink.onEvent(Event{15.0, StorageFilePut{9, 100.0, 100.0, 1}});
  sink.onEvent(Event{-1.0, LogEmitted{2, "hello"}});

  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string out = os.str();

  EXPECT_NE(out.find("mcsim_sim_events_scheduled_total 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mcsim_transfers_finished_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_transfer_bytes_total 2048\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_tasks_finished_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_storage_puts_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_storage_resident_bytes 100\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_log_messages_total 1\n"), std::string::npos);
  // Task 7 waited 3 s (ready at 2, started at 5) and executed for 10 s.
  EXPECT_NE(out.find("mcsim_task_wait_seconds_sum 3\n"), std::string::npos);
  EXPECT_NE(out.find("mcsim_task_exec_seconds_sum 10\n"), std::string::npos);
}

TEST(MetricsSink, DeclinesTransferProgress) {
  MetricsRegistry reg;
  MetricsSink sink(reg);
  EXPECT_FALSE(sink.accepts(EventKind::TransferProgress));
  EXPECT_TRUE(sink.accepts(EventKind::TransferStarted));
}

}  // namespace
}  // namespace mcsim::obs
