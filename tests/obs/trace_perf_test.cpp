// Million-span stress: the SoA TraceStore and the .mctrace round-trip must
// stay exact (and ASan-clean) at the scale the ROADMAP targets for survey
// campaigns.  Labeled `perf` — excluded from the default ctest lane.
#include <sstream>

#include <gtest/gtest.h>

#include "mcsim/obs/trace.hpp"

namespace mcsim::obs {
namespace {

TEST(TracePerf, MillionSpanStoreRoundTripsThroughMctrace) {
  constexpr std::uint32_t kTasks = 1'000'000;
  TraceStore store;
  store.reserve(kTasks + 1);

  SpanSink sink(store);
  sink.onEvent({0.0, RunStarted{kTasks, 0, 64}});

  // Synthetic saturated pipeline: waves of 64 concurrent tasks, emitted in
  // time order so every wave occupies all 64 lanes at once.
  constexpr std::uint32_t kLanes = 64;
  constexpr std::uint32_t kWaves = kTasks / kLanes;
  double finish = 0.0;
  for (std::uint32_t w = 0; w < kWaves; ++w) {
    const double start = static_cast<double>(w) * 1.25;
    finish = start + 1.0;
    for (std::uint32_t i = 0; i < kLanes; ++i) {
      const std::uint32_t t = w * kLanes + i;
      sink.onEvent({start, TaskReady{t}});
      sink.onEvent({start, TaskStarted{t}});
      sink.onEvent({start, TaskExecStarted{t}});
    }
    for (std::uint32_t i = 0; i < kLanes; ++i)
      sink.onEvent({finish, TaskFinished{w * kLanes + i, 1.0}});
  }
  sink.onEvent({finish, RunFinished{finish}});

  // Run + per-task (queue wait, task, compute).
  ASSERT_EQ(store.spanCount(), 1u + 3u * kTasks);
  EXPECT_EQ(store.laneCount(), static_cast<int>(kLanes));

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeMctrace(buf, store);
  const TraceStore reread = readMctrace(buf);
  ASSERT_TRUE(store == reread);
  EXPECT_EQ(reread.spanCount(), store.spanCount());
  EXPECT_EQ(reread.edgeCount(), store.edgeCount());
  EXPECT_DOUBLE_EQ(reread.maxTime(), store.maxTime());
}

}  // namespace
}  // namespace mcsim::obs
