#include "mcsim/obs/sink.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcsim::obs {
namespace {

Event taskReady(double t, std::uint32_t id) { return Event{t, TaskReady{id}}; }

/// Records the kinds it receives; accepts only the kinds it is given.
class RecordingSink final : public Sink {
 public:
  explicit RecordingSink(std::vector<EventKind> wanted = {})
      : wanted_(std::move(wanted)) {}

  void onEvent(const Event& event) override { seen.push_back(kind(event)); }
  bool accepts(EventKind k) const override {
    if (wanted_.empty()) return true;
    for (EventKind w : wanted_)
      if (w == k) return true;
    return false;
  }

  std::vector<EventKind> seen;

 private:
  std::vector<EventKind> wanted_;
};

TEST(Event, KindTracksPayloadAlternative) {
  EXPECT_EQ(kind(Event{0.0, SimEventScheduled{1, 2.0}}),
            EventKind::SimEventScheduled);
  EXPECT_EQ(kind(taskReady(0.0, 3)), EventKind::TaskReady);
  EXPECT_EQ(kind(Event{0.0, LogEmitted{1, "x"}}), EventKind::LogEmitted);
}

TEST(Event, NamesAreStableSnakeCase) {
  EXPECT_STREQ(eventName(EventKind::SimEventScheduled), "sim_event_scheduled");
  EXPECT_STREQ(eventName(EventKind::TransferFinished), "transfer_finished");
  EXPECT_STREQ(eventName(EventKind::BillingLineItem), "billing_line_item");
  EXPECT_STREQ(eventName(EventKind::LogEmitted), "log");
}

TEST(Event, ResourceNames) {
  EXPECT_STREQ(resourceName(Resource::Cpu), "cpu");
  EXPECT_STREQ(resourceName(Resource::Storage), "storage");
  EXPECT_STREQ(resourceName(Resource::TransferIn), "transfer_in");
  EXPECT_STREQ(resourceName(Resource::TransferOut), "transfer_out");
}

TEST(NullSink, AcceptsNothing) {
  NullSink sink;
  EXPECT_FALSE(sink.accepts(EventKind::TaskReady));
  EXPECT_FALSE(sink.accepts(EventKind::TransferProgress));
  sink.onEvent(taskReady(0.0, 1));  // still safe to call
}

TEST(FanOutSink, ForwardsToAcceptingChildrenOnly) {
  RecordingSink wantsTasks({EventKind::TaskReady});
  RecordingSink wantsAll;
  FanOutSink fan({&wantsTasks, &wantsAll});

  fan.onEvent(taskReady(0.0, 1));
  fan.onEvent(Event{0.0, TransferStarted{1, 10.0, 1}});

  ASSERT_EQ(wantsTasks.seen.size(), 1u);
  EXPECT_EQ(wantsTasks.seen[0], EventKind::TaskReady);
  EXPECT_EQ(wantsAll.seen.size(), 2u);
}

TEST(FanOutSink, AcceptsIsUnionOfChildren) {
  RecordingSink a({EventKind::TaskReady});
  RecordingSink b({EventKind::TransferProgress});
  FanOutSink fan;
  EXPECT_FALSE(fan.accepts(EventKind::TaskReady));  // no children yet
  fan.add(&a);
  fan.add(&b);
  fan.add(nullptr);  // ignored
  EXPECT_EQ(fan.childCount(), 2u);
  EXPECT_TRUE(fan.accepts(EventKind::TaskReady));
  EXPECT_TRUE(fan.accepts(EventKind::TransferProgress));
  EXPECT_FALSE(fan.accepts(EventKind::StorageFilePut));
}

TEST(RingBufferSink, FillsThenOverwritesOldest) {
  RingBufferSink ring(3);
  for (std::uint32_t i = 0; i < 5; ++i) ring.onEvent(taskReady(i, i));

  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);

  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first: events 2, 3, 4 survive.
  EXPECT_EQ(std::get<TaskReady>(events[0].payload).task, 2u);
  EXPECT_EQ(std::get<TaskReady>(events[1].payload).task, 3u);
  EXPECT_EQ(std::get<TaskReady>(events[2].payload).task, 4u);
}

TEST(RingBufferSink, CountOfFiltersByPayloadType) {
  RingBufferSink ring(10);
  ring.onEvent(taskReady(0.0, 1));
  ring.onEvent(Event{1.0, TaskFinished{1, 5.0}});
  ring.onEvent(taskReady(2.0, 2));
  EXPECT_EQ(ring.countOf<TaskReady>(), 2u);
  EXPECT_EQ(ring.countOf<TaskFinished>(), 1u);
  EXPECT_EQ(ring.countOf<TransferStarted>(), 0u);
}

TEST(CollectingSink, BuffersEverythingInArrivalOrder) {
  CollectingSink sink;
  EXPECT_TRUE(sink.accepts(EventKind::TaskReady));
  for (std::uint32_t i = 0; i < 4; ++i) sink.onEvent(taskReady(i, i));
  ASSERT_EQ(sink.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(std::get<TaskReady>(sink.events()[i].payload).task, i);
}

TEST(CollectingSink, TakeDrainsTheBuffer) {
  CollectingSink sink;
  sink.onEvent(taskReady(0.0, 7));
  const std::vector<Event> taken = sink.take();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(std::get<TaskReady>(taken[0].payload).task, 7u);
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace mcsim::obs
