// Cost-attribution acceptance tests: the report's breakdown must reconcile
// with the engine's authoritative billing — to the cent — on the paper's
// 1-degree Montage workflow, in every data mode and under both CPU billing
// models.
#include "mcsim/obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tests/common/json.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/telemetry.hpp"

namespace mcsim::obs {
namespace {

struct AttributedRun {
  engine::ExecutionResult result;
  ReportBuilder builder;
};

AttributedRun runAttributed(const dag::Workflow& wf, engine::DataMode mode,
                            int processors) {
  AttributedRun run;
  engine::EngineConfig cfg;
  cfg.mode = mode;
  cfg.processors = processors;
  cfg.observer = &run.builder;
  run.result = engine::simulateWorkflow(wf, cfg);
  return run;
}

double centRound(Money m) { return std::round(m.value() * 100.0) / 100.0; }

TEST(RunReport, BreakdownReconcilesToTheCentOnMontage) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  const cloud::Pricing pricing = cloud::Pricing::amazon2008();

  for (const auto mode :
       {engine::DataMode::Regular, engine::DataMode::DynamicCleanup,
        engine::DataMode::RemoteIO}) {
    AttributedRun run = runAttributed(wf, mode, 8);
    for (const auto billing :
         {cloud::CpuBillingMode::Provisioned, cloud::CpuBillingMode::Usage}) {
      const RunReport report =
          run.builder.build(wf, run.result, pricing, billing);

      // Totals are the engine's own computeCost — identical by construction.
      const auto expected = engine::computeCost(run.result, pricing, billing);
      EXPECT_DOUBLE_EQ(report.totals.total().value(),
                       expected.total().value());

      // The attributed breakdown (staging + every task + idle CPU surplus)
      // must add back up to the billed total, to the cent.
      Money attributed = report.staging.total() + report.unattributedCpu;
      for (const TaskCost& t : report.byTask) attributed += t.cost.total();
      EXPECT_NEAR(attributed.value(), report.totals.total().value(), 0.005)
          << engine::dataModeName(mode) << "/" << report.billing;
      EXPECT_EQ(centRound(attributed), centRound(report.totals.total()))
          << engine::dataModeName(mode) << "/" << report.billing;

      // Levels are a regrouping of the same rows: identical sums.
      Money byLevel;
      std::size_t levelTasks = 0;
      for (const LevelCost& l : report.byLevel) {
        byLevel += l.cost.total();
        levelTasks += l.tasks;
      }
      EXPECT_NEAR(byLevel.value(),
                  (attributed - report.unattributedCpu).value(), 1e-9);
      EXPECT_EQ(levelTasks, report.byTask.size());
    }
  }
}

TEST(RunReport, RawQuantitiesMatchTheExecutionResult) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  for (const auto mode :
       {engine::DataMode::Regular, engine::DataMode::DynamicCleanup,
        engine::DataMode::RemoteIO}) {
    AttributedRun run = runAttributed(wf, mode, 8);

    ResourceUsage sum;
    for (const auto& [task, usage] : run.builder.usage()) {
      sum.cpuSeconds += usage.cpuSeconds;
      sum.storageByteSeconds += usage.storageByteSeconds;
      sum.bytesIn += usage.bytesIn;
      sum.bytesOut += usage.bytesOut;
    }
    EXPECT_NEAR(sum.cpuSeconds, run.result.cpuBusySeconds,
                1e-9 * run.result.cpuBusySeconds);
    EXPECT_NEAR(sum.bytesIn, run.result.bytesIn.value(),
                1e-9 * run.result.bytesIn.value());
    EXPECT_NEAR(sum.bytesOut, run.result.bytesOut.value(),
                1e-9 * run.result.bytesOut.value());
    // Byte-seconds: per-object attribution vs. the usage-curve integral —
    // the same additions in a different order.
    EXPECT_NEAR(sum.storageByteSeconds, run.result.storageByteSeconds,
                1e-6 * run.result.storageByteSeconds);
  }
}

TEST(RunReport, UsageBillingLeavesNoUnattributedCpu) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  AttributedRun run = runAttributed(wf, engine::DataMode::DynamicCleanup, 8);
  const RunReport report =
      run.builder.build(wf, run.result, cloud::Pricing::amazon2008(),
                        cloud::CpuBillingMode::Usage);
  EXPECT_NEAR(report.unattributedCpu.value(), 0.0, 1e-6);

  // Provisioned billing pays for 8 processors the whole makespan; the idle
  // surplus must be positive and explicit, not smeared over tasks.
  const RunReport provisioned =
      run.builder.build(wf, run.result, cloud::Pricing::amazon2008(),
                        cloud::CpuBillingMode::Provisioned);
  EXPECT_GT(provisioned.unattributedCpu.value(), 0.0);
  // The per-task attributed CPU cost is the same under both models (tasks
  // consume the same CPU seconds); only the surplus differs.
  Money usageCpu, provisionedCpu;
  for (const TaskCost& t : report.byTask) usageCpu += t.cost.cpu;
  for (const TaskCost& t : provisioned.byTask) provisionedCpu += t.cost.cpu;
  EXPECT_NEAR(usageCpu.value(), provisionedCpu.value(), 1e-9);
}

TEST(RunReport, RetriesAreBilledToTheirTask) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  AttributedRun run;
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::Regular;
  cfg.processors = 4;
  cfg.taskFailureProbability = 0.2;
  cfg.observer = &run.builder;
  run.result = engine::simulateWorkflow(wf, cfg);
  ASSERT_GT(run.result.taskRetries, 0u);

  double attributedCpu = 0.0;
  for (const auto& [task, usage] : run.builder.usage())
    attributedCpu += usage.cpuSeconds;
  // cpuBusySeconds includes every failed attempt; so must the attribution.
  EXPECT_NEAR(attributedCpu, run.result.cpuBusySeconds, 1e-9);
}

TEST(ReportJson, ParsesAndMirrorsTheReport) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  AttributedRun run = runAttributed(wf, engine::DataMode::DynamicCleanup, 8);
  const RunReport report =
      run.builder.build(wf, run.result, cloud::Pricing::amazon2008(),
                        cloud::CpuBillingMode::Provisioned);

  std::ostringstream os;
  writeReportJson(os, report);
  const test::JsonValue v = test::parseJson(os.str());

  EXPECT_EQ(v.at("schema").asString(), "mcsim.report.v1");
  EXPECT_EQ(v.at("workflow").asString(), wf.name());
  EXPECT_EQ(v.at("mode").asString(), "cleanup");
  EXPECT_EQ(v.at("billing").asString(), "provisioned");
  EXPECT_NEAR(v.at("totals").at("total").asNumber(),
              report.totals.total().value(), 1e-9);
  EXPECT_NEAR(v.at("metrics").at("makespan_seconds").asNumber(),
              report.makespanSeconds, 1e-6);
  EXPECT_EQ(v.at("by_task").asArray().size(), report.byTask.size());
  EXPECT_EQ(v.at("by_level").asArray().size(), report.byLevel.size());
  // Level 0 is workflow staging; it carries the stage-in bytes.
  const test::JsonValue& level0 = v.at("by_level").asArray().front();
  EXPECT_EQ(level0.at("level").asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(level0.at("bytes_in").asNumber(),
                   report.staging.usage.bytesIn);
}

TEST(TelemetrySession, WritesAllThreeArtifacts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mcsim_obs_session_test")
          .string();
  std::filesystem::remove_all(dir);

  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  TelemetrySession session(TelemetryOptions{dir});

  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;
  cfg.processors = 4;
  cfg.observer = session.sink();
  cfg.samplePeriodSeconds = 60.0;
  const auto result = engine::simulateWorkflow(wf, cfg);

  const RunReport report =
      session.finish(wf, result, cloud::Pricing::amazon2008(),
                     cloud::CpuBillingMode::Provisioned);
  EXPECT_DOUBLE_EQ(
      report.totals.total().value(),
      engine::computeCost(result, cloud::Pricing::amazon2008(),
                          cloud::CpuBillingMode::Provisioned)
          .total()
          .value());

  // events.jsonl: non-empty, every line valid JSON.
  std::ifstream events(session.eventsPath());
  ASSERT_TRUE(events.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(events, line)) {
    test::parseJson(line);
    ++lines;
  }
  EXPECT_GT(lines, wf.taskCount() * 4);  // at least the task lifecycle

  // metrics.prom: exposes the standard instruments.
  std::ifstream metrics(session.metricsPath());
  ASSERT_TRUE(metrics.good());
  std::stringstream prom;
  prom << metrics.rdbuf();
  EXPECT_NE(prom.str().find("mcsim_tasks_finished_total " +
                            std::to_string(wf.taskCount())),
            std::string::npos);

  // report.json parses and matches the returned report.
  std::ifstream reportFile(session.reportPath());
  ASSERT_TRUE(reportFile.good());
  std::stringstream reportText;
  reportText << reportFile.rdbuf();
  const test::JsonValue v = test::parseJson(reportText.str());
  EXPECT_NEAR(v.at("totals").at("total").asNumber(),
              report.totals.total().value(), 1e-9);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mcsim::obs
