// End-to-end instrumentation: every layer emits the right events, the
// engine's event stream is consistent with its ExecutionResult, and — the
// zero-cost contract — observing a run never changes its outcome.
#include <gtest/gtest.h>

#include <map>

#include "tests/common/fixtures.hpp"
#include "mcsim/cloud/storage.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/obs/sampler.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/sim/link.hpp"
#include "mcsim/sim/processor_pool.hpp"
#include "mcsim/sim/simulator.hpp"

namespace mcsim::obs {
namespace {

TEST(SimulatorEvents, ScheduleFireCancel) {
  RingBufferSink ring(64);
  sim::Simulator sim;
  sim.setObserver(&ring);

  sim.schedule(1.0, [] {});
  const sim::EventId doomed = sim.schedule(2.0, [] {});
  EXPECT_TRUE(sim.cancel(doomed));
  EXPECT_FALSE(sim.cancel(doomed));  // second cancel: gone, no event
  sim.run();

  EXPECT_EQ(ring.countOf<SimEventScheduled>(), 2u);
  EXPECT_EQ(ring.countOf<SimEventCancelled>(), 1u);
  EXPECT_EQ(ring.countOf<SimEventFired>(), 1u);
}

TEST(LinkEvents, TransfersCarryDurationAndShare) {
  RingBufferSink ring(128);
  sim::Simulator sim;
  sim::Link link(sim,
                 sim::LinkConfig{.bandwidthBytesPerSec = 1000.0,
                                 .sharing = sim::LinkSharing::FairShare});
  link.setObserver(&ring);

  link.startTransfer(Bytes(1000.0), [] {});
  link.startTransfer(Bytes(1000.0), [] {});
  sim.run();

  EXPECT_EQ(ring.countOf<TransferStarted>(), 2u);
  EXPECT_EQ(ring.countOf<TransferFinished>(), 2u);
  // Two concurrent 1000-byte transfers over a fair-shared 1000 B/s link:
  // both finish at t=2.
  for (const Event& e : ring.snapshot()) {
    if (const auto* fin = std::get_if<TransferFinished>(&e.payload)) {
      EXPECT_DOUBLE_EQ(e.time, 2.0);
      EXPECT_DOUBLE_EQ(fin->seconds, 2.0);
      EXPECT_DOUBLE_EQ(fin->bytes, 1000.0);
    }
  }
  // Share changes: 1 active (1000 each) -> 2 active (500 each) -> done.
  EXPECT_GE(ring.countOf<LinkShareChanged>(), 2u);
}

TEST(LinkEvents, ProgressOnlyWhenAccepted) {
  // A ring buffer accepts everything, so progress events flow; engine sinks
  // that decline them are exercised via the accepts() gate in Link itself.
  RingBufferSink ring(256);
  sim::Simulator sim;
  sim::Link link(sim,
                 sim::LinkConfig{.bandwidthBytesPerSec = 1000.0,
                                 .sharing = sim::LinkSharing::FairShare});
  link.setObserver(&ring);

  link.startTransfer(Bytes(500.0), [] {});
  link.startTransfer(Bytes(1500.0), [] {});  // outlives the first
  sim.run();
  EXPECT_GE(ring.countOf<TransferProgress>(), 1u);

  NullSink null;
  sim::Simulator sim2;
  sim::Link link2(sim2,
                  sim::LinkConfig{.bandwidthBytesPerSec = 1000.0,
                                  .sharing = sim::LinkSharing::FairShare});
  link2.setObserver(&null);
  link2.startTransfer(Bytes(500.0), [] {});
  sim2.run();  // must not crash; NullSink declines everything
  EXPECT_EQ(link2.completedTransfers(), 1u);
}

TEST(ProcessorPoolEvents, ClaimQueueRelease) {
  RingBufferSink ring(64);
  sim::Simulator sim;
  sim::ProcessorPool pool(sim, 1);
  pool.setObserver(&ring);

  pool.acquire([&pool] { pool.release(); });
  pool.acquire([&pool] { pool.release(); });  // must queue behind the first
  sim.run();

  EXPECT_EQ(ring.countOf<ProcessorClaimed>(), 2u);
  EXPECT_EQ(ring.countOf<ProcessorReleased>(), 2u);
  EXPECT_EQ(ring.countOf<ProcessorQueued>(), 1u);
}

TEST(StorageEvents, PutAndEraseTrackResidency) {
  RingBufferSink ring(64);
  sim::Simulator sim;
  cloud::StorageService storage(sim);
  storage.setObserver(&ring);

  storage.put(1, Bytes(100.0));
  storage.put(2, Bytes(50.0));
  storage.erase(1);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<StorageFilePut>(events[1].payload).residentBytes,
                   150.0);
  const auto& erased = std::get<StorageFileErased>(events[2].payload);
  EXPECT_EQ(erased.key, 1u);
  EXPECT_DOUBLE_EQ(erased.bytes, 100.0);
  EXPECT_DOUBLE_EQ(erased.residentBytes, 50.0);
  EXPECT_EQ(erased.objects, 1u);
}

TEST(PeriodicSampler, TicksUntilStopped) {
  sim::Simulator sim;
  int samples = 0;
  PeriodicSampler sampler(sim, 10.0, [&] { ++samples; });
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sim.schedule(35.0, [&] { sampler.stop(); });
  sim.run();  // drains: the sampler no longer reschedules after stop()
  EXPECT_EQ(samples, 3);  // t = 10, 20, 30
  EXPECT_FALSE(sampler.running());
}

TEST(PeriodicSampler, RejectsNonPositivePeriod) {
  sim::Simulator sim;
  EXPECT_THROW(PeriodicSampler(sim, 0.0, [] {}), std::invalid_argument);
}

// -- engine stream ------------------------------------------------------------

engine::ExecutionResult observedRun(const dag::Workflow& wf,
                                    engine::EngineConfig cfg, Sink* sink) {
  cfg.observer = sink;
  return engine::simulateWorkflow(wf, cfg);
}

TEST(EngineEvents, LifecyclePerTaskAndRunMarkers) {
  const auto fig = test::makeFigure3Workflow();
  RingBufferSink ring(4096);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  const auto result = observedRun(fig.wf, cfg, &ring);

  EXPECT_EQ(ring.countOf<RunStarted>(), 1u);
  EXPECT_EQ(ring.countOf<RunFinished>(), 1u);
  EXPECT_EQ(ring.countOf<TaskReady>(), 7u);
  EXPECT_EQ(ring.countOf<TaskStarted>(), 7u);
  EXPECT_EQ(ring.countOf<TaskExecStarted>(), 7u);
  EXPECT_EQ(ring.countOf<TaskFinished>(), 7u);

  // Stage-in of the single external input, stage-out of g and h.
  EXPECT_EQ(ring.countOf<StageInStarted>(), 1u);
  EXPECT_EQ(ring.countOf<StageInFinished>(), 1u);
  EXPECT_EQ(ring.countOf<StageOutStarted>(), 2u);
  EXPECT_EQ(ring.countOf<StageOutFinished>(), 2u);

  // The RunFinished marker carries the pre-teardown end time.
  for (const Event& e : ring.snapshot()) {
    if (const auto* fin = std::get_if<RunFinished>(&e.payload)) {
      EXPECT_DOUBLE_EQ(fin->seconds, result.makespanSeconds);
    }
  }
}

TEST(EngineEvents, PerTaskOrderingIsReadyStartExecFinish) {
  const auto fig = test::makeFigure3Workflow();
  RingBufferSink ring(4096);
  engine::EngineConfig cfg;
  cfg.processors = 1;
  observedRun(fig.wf, cfg, &ring);

  std::map<std::uint32_t, int> stage;  // 0 ready, 1 started, 2 exec, 3 done
  for (const Event& e : ring.snapshot()) {
    switch (kind(e)) {
      case EventKind::TaskReady:
        EXPECT_EQ(stage.count(std::get<TaskReady>(e.payload).task), 0u);
        stage[std::get<TaskReady>(e.payload).task] = 0;
        break;
      case EventKind::TaskStarted:
        EXPECT_EQ(stage.at(std::get<TaskStarted>(e.payload).task), 0);
        stage[std::get<TaskStarted>(e.payload).task] = 1;
        break;
      case EventKind::TaskExecStarted:
        EXPECT_EQ(stage.at(std::get<TaskExecStarted>(e.payload).task), 1);
        stage[std::get<TaskExecStarted>(e.payload).task] = 2;
        break;
      case EventKind::TaskFinished:
        EXPECT_EQ(stage.at(std::get<TaskFinished>(e.payload).task), 2);
        stage[std::get<TaskFinished>(e.payload).task] = 3;
        break;
      default: break;
    }
  }
  EXPECT_EQ(stage.size(), 7u);
  for (const auto& [task, s] : stage) EXPECT_EQ(s, 3) << "task " << task;
}

TEST(EngineEvents, CleanupDecisionsAreReported) {
  const auto fig = test::makeFigure3Workflow();
  RingBufferSink ring(4096);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  cfg.mode = engine::DataMode::DynamicCleanup;
  observedRun(fig.wf, cfg, &ring);

  // a, c, d, e, f are deletable intermediates; b's last consumer is t6.
  EXPECT_EQ(ring.countOf<FileCleanupDeleted>(), 6u);
  bool bFreedByT6 = false;
  for (const Event& e : ring.snapshot())
    if (const auto* del = std::get_if<FileCleanupDeleted>(&e.payload))
      if (del->file == fig.b && del->task == fig.t6) bFreedByT6 = true;
  EXPECT_TRUE(bFreedByT6);
}

TEST(EngineEvents, SamplerEmitsStorageSamples) {
  const auto fig = test::makeFigure3Workflow();
  RingBufferSink ring(4096);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  cfg.samplePeriodSeconds = 5.0;
  const auto result = observedRun(fig.wf, cfg, &ring);
  // The run lasts tens of seconds; samples every 5 s until the end.
  const std::size_t expected =
      static_cast<std::size_t>(result.makespanSeconds / 5.0);
  EXPECT_EQ(ring.countOf<StorageSampled>(), expected);
}

TEST(EngineEvents, ObservationDoesNotPerturbTheRun) {
  // The determinism contract: identical results with no sink, a NullSink,
  // and a full recorder — telemetry must be read-only.
  const auto wfs = {test::makeForkJoinWorkflow(6), test::makeChainWorkflow(5)};
  for (const dag::Workflow& wf : wfs) {
    for (const auto mode :
         {engine::DataMode::Regular, engine::DataMode::DynamicCleanup,
          engine::DataMode::RemoteIO}) {
      engine::EngineConfig cfg;
      cfg.processors = 3;
      cfg.mode = mode;
      cfg.taskFailureProbability = 0.05;
      const auto bare = engine::simulateWorkflow(wf, cfg);

      NullSink null;
      const auto nulled = observedRun(wf, cfg, &null);

      RingBufferSink ring(1 << 14);
      engine::EngineConfig observedCfg = cfg;
      observedCfg.samplePeriodSeconds = 7.0;
      const auto observed = observedRun(wf, observedCfg, &ring);

      for (const auto& r : {nulled, observed}) {
        EXPECT_DOUBLE_EQ(r.makespanSeconds, bare.makespanSeconds);
        EXPECT_DOUBLE_EQ(r.cpuBusySeconds, bare.cpuBusySeconds);
        EXPECT_DOUBLE_EQ(r.storageByteSeconds, bare.storageByteSeconds);
        EXPECT_DOUBLE_EQ(r.bytesIn.value(), bare.bytesIn.value());
        EXPECT_DOUBLE_EQ(r.bytesOut.value(), bare.bytesOut.value());
        EXPECT_EQ(r.taskRetries, bare.taskRetries);
      }
    }
  }
}

TEST(EngineEvents, TraceOptionStillWorksAlongsideObserver) {
  const auto fig = test::makeFigure3Workflow();
  RingBufferSink ring(4096);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  cfg.trace = true;
  const auto result = observedRun(fig.wf, cfg, &ring);
  ASSERT_EQ(result.taskRecords.size(), 7u);
  for (const auto& r : result.taskRecords) {
    EXPECT_GE(r.startTime, r.readyTime);
    EXPECT_GE(r.execStart, r.startTime);
    EXPECT_GT(r.finishTime, r.execStart);
  }
  EXPECT_EQ(ring.countOf<TaskFinished>(), 7u);  // observer still saw the run
}

}  // namespace
}  // namespace mcsim::obs
