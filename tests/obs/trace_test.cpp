// SpanSink folding + exporter tests: the typed event stream must fold into
// exactly the documented spans and causal edges, the Perfetto export must be
// byte-stable (golden file) and valid JSON on a real Montage run, and the
// binary .mctrace format must round-trip losslessly and reject corruption.
#include "mcsim/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "tests/common/json.hpp"
#include "mcsim/analysis/explain.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/engine/trace_export.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/selfprofile.hpp"

namespace mcsim::obs {
namespace {

// -- synthetic two-task run ---------------------------------------------------
//
// One external input staged in, mProject -> mAdd on a single processor, one
// final stage-out: the smallest stream exercising every span family.

TraceTopology twoTaskTopology() {
  TraceTopology topo;
  topo.parentOffsets = {0, 0, 1};  // task 1's parent is task 0
  topo.parents = {0};
  topo.extInputOffsets = {0, 1, 1};  // task 0 consumes external file 0
  topo.extInputs = {0};
  return topo;
}

std::vector<Event> twoTaskStream() {
  return {
      {0.0, RunStarted{2, 3, 1}},
      {0.0, StageInStarted{0, kNoTask, 1e6}},
      {0.8, StageInFinished{0, kNoTask, 1e6}},
      {0.8, TaskReady{0}},
      {0.8, TaskStarted{0}},
      {0.8, TaskExecStarted{0}},
      {10.8, StorageFilePut{1, 2e6, 3e6, 2}},
      {10.8, TaskFinished{0, 10.0}},
      {10.8, TaskReady{1}},
      {10.8, TaskStarted{1}},
      {10.8, TaskExecStarted{1}},
      {15.8, TaskFinished{1, 5.0}},
      {15.8, StageOutStarted{2, kNoTask, 2e6}},
      {17.4, StageOutFinished{2, kNoTask, 2e6}},
      {17.4, RunFinished{17.4}},
  };
}

TraceStore foldTwoTasks() {
  TraceStore store;
  SpanSink sink(store, twoTaskTopology());
  for (const Event& e : twoTaskStream()) sink.onEvent(e);
  return store;
}

bool hasEdge(const TraceStore& store, std::uint32_t from, std::uint32_t to,
             EdgeKind kind) {
  for (std::size_t i = 0; i < store.edgeCount(); ++i) {
    if (store.edgeFroms()[i] == from && store.edgeTos()[i] == to &&
        store.edgeKinds()[i] == static_cast<std::uint8_t>(kind))
      return true;
  }
  return false;
}

TEST(SpanSink, FoldsTwoTaskChainIntoDocumentedSpans) {
  const TraceStore store = foldTwoTasks();
  ASSERT_EQ(store.spanCount(), 9u);

  // Span 0: the Run span, bounded by RunStarted/RunFinished.
  EXPECT_EQ(store.kind(0), SpanKind::Run);
  EXPECT_DOUBLE_EQ(store.begin(0), 0.0);
  EXPECT_DOUBLE_EQ(store.end(0), 17.4);
  EXPECT_EQ(store.lane(0), kLaneNone);

  // Span 1: the workflow-level stage-in on the link lane.
  EXPECT_EQ(store.kind(1), SpanKind::StageIn);
  EXPECT_EQ(store.file(1), 0u);
  EXPECT_EQ(store.task(1), kNoTask);
  EXPECT_EQ(store.lane(1), kLaneLink);
  EXPECT_DOUBLE_EQ(store.end(1), 0.8);

  // Spans 2-4: task 0's queue wait, occupancy and compute.
  EXPECT_EQ(store.kind(2), SpanKind::QueueWait);
  EXPECT_EQ(store.kind(3), SpanKind::Task);
  EXPECT_EQ(store.kind(4), SpanKind::Compute);
  EXPECT_EQ(store.task(3), 0u);
  EXPECT_EQ(store.lane(3), 0);
  EXPECT_DOUBLE_EQ(store.begin(3), 0.8);
  EXPECT_DOUBLE_EQ(store.end(3), 10.8);

  // Spans 5-7: task 1, same processor lane (sequential reuse).
  EXPECT_EQ(store.kind(6), SpanKind::Task);
  EXPECT_EQ(store.task(6), 1u);
  EXPECT_EQ(store.lane(6), 0);

  // Span 8: final stage-out back on the link lane.
  EXPECT_EQ(store.kind(8), SpanKind::StageOut);
  EXPECT_EQ(store.lane(8), kLaneLink);
  EXPECT_DOUBLE_EQ(store.end(8), 17.4);

  // Causality: external input feeds task 0's queue wait; task 0 feeds
  // task 1's queue wait (dependency) and also its lane (resource); the last
  // closed task feeds the workflow stage-out.
  EXPECT_TRUE(hasEdge(store, 1, 2, EdgeKind::FollowsFrom));
  EXPECT_TRUE(hasEdge(store, 2, 3, EdgeKind::FollowsFrom));
  EXPECT_TRUE(hasEdge(store, 3, 4, EdgeKind::Child));
  EXPECT_TRUE(hasEdge(store, 3, 5, EdgeKind::FollowsFrom));
  EXPECT_TRUE(hasEdge(store, 3, 5, EdgeKind::Resource));
  EXPECT_TRUE(hasEdge(store, 5, 6, EdgeKind::FollowsFrom));
  EXPECT_TRUE(hasEdge(store, 6, 7, EdgeKind::Child));
  EXPECT_TRUE(hasEdge(store, 6, 8, EdgeKind::FollowsFrom));

  // The StorageFilePut landed on the counter track, not as a span.
  ASSERT_EQ(store.counterCount(), 1u);
  EXPECT_DOUBLE_EQ(store.counterBytes()[0], 3e6);
  EXPECT_DOUBLE_EQ(store.counterObjects()[0], 2.0);

  EXPECT_EQ(store.laneCount(), 1);
  EXPECT_DOUBLE_EQ(store.maxTime(), 17.4);
}

TEST(SpanSink, CrashRetryFoldsIntoFailedComputeAndRetryWait) {
  TraceStore store;
  SpanSink sink(store);
  const std::vector<Event> stream = {
      {0.0, RunStarted{1, 0, 1}},
      {0.0, TaskReady{0}},
      {0.0, TaskStarted{0}},
      {0.0, TaskExecStarted{0}},
      {4.0, ProcessorCrashed{0, 4.0}},
      {4.0, TaskRetryScheduled{0, 1, 2.0}},
      {6.0, TaskExecStarted{0}},
      {16.0, TaskFinished{0, 10.0}},
      {16.0, RunFinished{16.0}},
  };
  for (const Event& e : stream) sink.onEvent(e);

  // Run, QueueWait, Task, Compute(failed), RetryWait, Compute.
  ASSERT_EQ(store.spanCount(), 6u);
  EXPECT_EQ(store.kind(3), SpanKind::Compute);
  EXPECT_TRUE(store.isFailed(3));
  EXPECT_DOUBLE_EQ(store.end(3), 4.0);
  EXPECT_EQ(store.kind(4), SpanKind::RetryWait);
  EXPECT_DOUBLE_EQ(store.begin(4), 4.0);
  EXPECT_DOUBLE_EQ(store.end(4), 6.0);
  EXPECT_EQ(store.kind(5), SpanKind::Compute);
  EXPECT_FALSE(store.isFailed(5));
  EXPECT_DOUBLE_EQ(store.end(5), 16.0);
  // The task span covers the whole occupancy and is not failed.
  EXPECT_EQ(store.kind(2), SpanKind::Task);
  EXPECT_FALSE(store.isFailed(2));
  EXPECT_DOUBLE_EQ(store.end(2), 16.0);
  // Both attempts and the retry wait nest under the task span.
  EXPECT_TRUE(hasEdge(store, 2, 3, EdgeKind::Child));
  EXPECT_TRUE(hasEdge(store, 2, 4, EdgeKind::Child));
  EXPECT_TRUE(hasEdge(store, 2, 5, EdgeKind::Child));
}

TEST(SpanSink, TaskFailedMarksSpanAndFreesLane) {
  TraceStore store;
  SpanSink sink(store);
  const std::vector<Event> stream = {
      {0.0, RunStarted{2, 0, 1}},
      {0.0, TaskReady{0}},
      {0.0, TaskStarted{0}},
      {0.0, TaskExecStarted{0}},
      {5.0, TaskFailed{0, 3}},
      {5.0, TaskReady{1}},
      {5.0, TaskStarted{1}},
      {9.0, TaskFinished{1, 4.0}},
  };
  for (const Event& e : stream) sink.onEvent(e);

  // Task 0's span is failed; task 1 reuses the freed lane 0.
  EXPECT_EQ(store.kind(2), SpanKind::Task);
  EXPECT_TRUE(store.isFailed(2));
  EXPECT_TRUE(store.isFailed(3));  // its compute too
  EXPECT_EQ(store.kind(5), SpanKind::Task);
  EXPECT_EQ(store.lane(5), 0);
  EXPECT_EQ(store.laneCount(), 1);
}

TEST(SpanSink, RemoteIoStageOutEndsCompute) {
  TraceStore store;
  SpanSink sink(store);
  const std::vector<Event> stream = {
      {0.0, RunStarted{1, 2, 1}},
      {0.0, TaskReady{0}},
      {0.0, TaskStarted{0}},
      {0.0, StageInStarted{0, 0, 1e6}},
      {0.8, StageInFinished{0, 0, 1e6}},
      {0.8, TaskExecStarted{0}},
      {10.8, StageOutStarted{1, 0, 2e6}},  // first output: exec ends here
      {12.4, StageOutFinished{1, 0, 2e6}},
      {12.4, TaskFinished{0, 10.0}},
      {12.4, RunFinished{12.4}},
  };
  for (const Event& e : stream) sink.onEvent(e);

  // The task-attributed stage spans live on the task's processor lane.
  bool sawCompute = false;
  for (std::uint32_t s = 0; s < store.spanCount(); ++s) {
    if (store.kind(s) == SpanKind::Compute) {
      sawCompute = true;
      EXPECT_DOUBLE_EQ(store.begin(s), 0.8);
      EXPECT_DOUBLE_EQ(store.end(s), 10.8);  // closed by StageOutStarted
      EXPECT_FALSE(store.isFailed(s));
    }
    if (store.kind(s) == SpanKind::StageIn ||
        store.kind(s) == SpanKind::StageOut) {
      EXPECT_EQ(store.task(s), 0u);
      EXPECT_EQ(store.lane(s), 0);
    }
  }
  EXPECT_TRUE(sawCompute);
}

TEST(SpanSink, LinkOutageBecomesOutageStallSpan) {
  TraceStore store;
  SpanSink sink(store);
  sink.onEvent({0.0, RunStarted{0, 0, 1}});
  sink.onEvent({5.0, LinkSuspended{}});
  sink.onEvent({8.0, LinkResumed{}});
  ASSERT_EQ(store.spanCount(), 2u);
  EXPECT_EQ(store.kind(1), SpanKind::OutageStall);
  EXPECT_EQ(store.lane(1), kLaneLink);
  EXPECT_DOUBLE_EQ(store.begin(1), 5.0);
  EXPECT_DOUBLE_EQ(store.end(1), 8.0);
}

TEST(SpanSink, ContentionAddsResourceEdgeAndSecondLane) {
  TraceStore store;
  SpanSink sink(store);
  // Two ready tasks, one processor: task 1 waits for task 0's lane.
  const std::vector<Event> stream = {
      {0.0, RunStarted{2, 0, 1}},
      {0.0, TaskReady{0}},
      {0.0, TaskReady{1}},
      {0.0, TaskStarted{0}},
      {7.0, TaskFinished{0, 7.0}},
      {7.0, TaskStarted{1}},
      {9.0, TaskFinished{1, 2.0}},
  };
  for (const Event& e : stream) sink.onEvent(e);
  // Task 1's queue wait spans the full wait and carries a Resource edge from
  // task 0's occupancy span.
  const std::uint32_t qw1 = 2;  // Run, qw0, qw1, task0, task1
  EXPECT_EQ(store.kind(qw1), SpanKind::QueueWait);
  EXPECT_EQ(store.task(qw1), 1u);
  EXPECT_DOUBLE_EQ(store.begin(qw1), 0.0);
  EXPECT_DOUBLE_EQ(store.end(qw1), 7.0);
  EXPECT_TRUE(hasEdge(store, 3, qw1, EdgeKind::Resource));
  EXPECT_EQ(store.laneCount(), 1);
}

// -- Perfetto export ----------------------------------------------------------

TraceNames twoTaskNames() {
  TraceNames names;
  names.taskNames = {"mProject", "mAdd"};
  names.taskTypes = {"mProject", "mAdd"};
  names.fileNames = {"in.fits", "proj.fits", "mosaic.jpg"};
  return names;
}

TEST(PerfettoExport, GoldenTwoTaskTrace) {
  const TraceStore store = foldTwoTasks();
  const TraceNames names = twoTaskNames();
  std::ostringstream out;
  writePerfettoTrace(out, store, &names);

  std::ifstream golden(std::string(MCSIM_TRACE_GOLDEN_DIR) +
                       "/two_task.perfetto.json");
  ASSERT_TRUE(golden.is_open())
      << "missing golden file; regenerate with tests/obs/golden/README";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

TEST(PerfettoExport, MontageRunProducesValidJson) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  TraceStore store;
  SpanSink sink(store, analysis::traceTopology(wf));
  engine::EngineConfig cfg;
  cfg.processors = 4;
  cfg.observer = &sink;
  engine::simulateWorkflow(wf, cfg);
  ASSERT_GT(store.spanCount(), wf.taskCount());

  const TraceNames names = analysis::traceNames(wf);
  std::ostringstream out;
  writePerfettoTrace(out, store, &names);
  const test::JsonValue doc = test::parseJson(out.str());
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_FALSE(events.empty());

  std::size_t complete = 0;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").asString();
    ASSERT_TRUE(ph == "X" || ph == "M" || ph == "C") << ph;
    const double pid = e.at("pid").asNumber();
    EXPECT_GE(pid, 1.0);
    EXPECT_LE(pid, 4.0);
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").asNumber(), 0.0);
      EXPECT_GE(e.at("ts").asNumber(), 0.0);
    }
  }
  EXPECT_EQ(complete, store.spanCount());
}

// -- .mctrace binary format ---------------------------------------------------

TEST(Mctrace, RoundTripsLosslessly) {
  const TraceStore store = foldTwoTasks();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeMctrace(buf, store);
  const TraceStore reread = readMctrace(buf);
  EXPECT_TRUE(store == reread);
  EXPECT_EQ(reread.laneCount(), store.laneCount());
  EXPECT_DOUBLE_EQ(reread.maxTime(), store.maxTime());
}

TEST(Mctrace, RoundTripsAMontageRun) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  TraceStore store;
  SpanSink sink(store, analysis::traceTopology(wf));
  engine::EngineConfig cfg;
  cfg.processors = 4;
  cfg.observer = &sink;
  engine::simulateWorkflow(wf, cfg);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeMctrace(buf, store);
  EXPECT_TRUE(store == readMctrace(buf));
}

TEST(Mctrace, RejectsBadMagicAndVersion) {
  {
    std::stringstream buf("JUNKJUNKJUNKJUNK");
    EXPECT_THROW(readMctrace(buf), std::runtime_error);
  }
  {
    // Valid magic, absurd version.
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    buf.write("MCTR", 4);
    const std::uint32_t version = 999;
    buf.write(reinterpret_cast<const char*>(&version), sizeof version);
    EXPECT_THROW(readMctrace(buf), std::runtime_error);
  }
}

TEST(Mctrace, EveryTruncationFailsCleanly) {
  const TraceStore store = foldTwoTasks();
  std::ostringstream full(std::ios::binary);
  writeMctrace(full, store);
  const std::string bytes = full.str();
  // Chop the stream at every prefix length: each must throw, never crash or
  // return a silently different trace.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    buf.write(bytes.data(), static_cast<std::streamsize>(n));
    EXPECT_THROW(readMctrace(buf), std::runtime_error) << "prefix " << n;
  }
}

TEST(Mctrace, RejectsCorruptHeaderCountsWithoutAllocating) {
  const TraceStore store = foldTwoTasks();
  std::ostringstream full(std::ios::binary);
  writeMctrace(full, store);
  std::string bytes = full.str();
  // Inflate the span count to ~2^60: the declared-size check must reject it
  // before any column allocation happens.
  std::uint64_t huge = 1ull << 60;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(readMctrace(buf), std::runtime_error);
}

TEST(Mctrace, RejectsDanglingEdgesAndBadKinds) {
  TraceStore store;
  const std::uint32_t a = store.beginSpan(SpanKind::Task, 0.0, 0, kNoFile,
                                          0.0, 0);
  store.endSpan(a, 1.0);
  store.addEdge(a, a, EdgeKind::Child);
  std::ostringstream full(std::ios::binary);
  writeMctrace(full, store);

  {
    // Point the edge at a span that does not exist.  Header is 32 bytes
    // (magic + version + 3 counts); one span's columns are
    // kind(1)+flags(1)+begin(8)+end(8)+task(4)+file(4)+bytes(8)+lane(4).
    std::string bytes = full.str();
    const std::size_t edgeFromOffset = 32 + (1 + 1 + 8 + 8 + 4 + 4 + 8 + 4);
    std::uint32_t bogus = 7;
    std::memcpy(bytes.data() + edgeFromOffset, &bogus, sizeof bogus);
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    buf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_THROW(readMctrace(buf), std::runtime_error);
  }
  {
    // Corrupt the span-kind byte.
    std::string bytes = full.str();
    bytes[32] = char(0x7f);
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    buf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_THROW(readMctrace(buf), std::runtime_error);
  }
}

// -- TimelineSink compatibility ----------------------------------------------

TEST(TimelineSinkCompat, DerivesLegacyRecordsFromSpans) {
  engine::TimelineSink sink(2);
  for (const Event& e : twoTaskStream()) sink.onEvent(e);
  const std::vector<engine::TaskRecord> records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].readyTime, 0.8);
  EXPECT_DOUBLE_EQ(records[0].startTime, 0.8);
  EXPECT_DOUBLE_EQ(records[0].execStart, 0.8);
  EXPECT_DOUBLE_EQ(records[0].finishTime, 10.8);
  EXPECT_DOUBLE_EQ(records[1].finishTime, 15.8);
}

TEST(TimelineSinkCompat, RetryKeepsFirstExecStartAndFailureKeepsNoFinish) {
  engine::TimelineSink sink(1);
  const std::vector<Event> stream = {
      {0.0, RunStarted{1, 0, 1}},
      {0.0, TaskReady{0}},
      {1.0, TaskStarted{0}},
      {1.0, TaskExecStarted{0}},
      {4.0, ProcessorCrashed{0, 3.0}},
      {4.0, TaskRetryScheduled{0, 1, 0.0}},
      {4.0, TaskExecStarted{0}},
      {8.0, TaskFailed{0, 2}},
  };
  for (const Event& e : stream) sink.onEvent(e);
  const auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  // Legacy semantics: the first exec start wins; TaskFailed never set a
  // finish time.
  EXPECT_DOUBLE_EQ(records[0].execStart, 1.0);
  EXPECT_DOUBLE_EQ(records[0].startTime, 1.0);
  EXPECT_DOUBLE_EQ(records[0].finishTime, -1.0);
}

// -- engine self-profiling ----------------------------------------------------

/// Collects every event it is offered (accepts all kinds).
struct CaptureSink final : Sink {
  std::vector<Event> events;
  void onEvent(const Event& event) override { events.push_back(event); }
  bool accepts(EventKind) const override { return true; }
};

TEST(SelfProfile, EngineEmitsPhaseProfilesOnlyWhenRequested) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);

  CaptureSink off;
  engine::EngineConfig cfg;
  cfg.processors = 4;
  cfg.observer = &off;
  engine::simulateWorkflow(wf, cfg);
  for (const Event& e : off.events)
    EXPECT_NE(kind(e), EventKind::PhaseProfile);

  CaptureSink on;
  cfg.observer = &on;
  cfg.profile = true;
  engine::simulateWorkflow(wf, cfg);
  std::size_t phases = 0;
  for (const Event& e : on.events) {
    if (kind(e) != EventKind::PhaseProfile) continue;
    ++phases;
    // Wall-clock events carry no simulation time.
    EXPECT_LT(e.time, 0.0);
    const auto& p = std::get<PhaseProfile>(e.payload);
    EXPECT_LT(static_cast<std::size_t>(p.phase), kSimPhaseCount);
    EXPECT_GE(p.wallSeconds, 0.0);
  }
  EXPECT_EQ(phases, kSimPhaseCount);

  // Profile events arrive after the deterministic stream: stripping them
  // leaves a stream identical to the unprofiled run.
  std::vector<Event> stripped;
  for (const Event& e : on.events)
    if (kind(e) != EventKind::PhaseProfile) stripped.push_back(e);
  ASSERT_EQ(stripped.size(), off.events.size());
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    EXPECT_EQ(stripped[i].time, off.events[i].time) << i;
    EXPECT_EQ(stripped[i].payload.index(), off.events[i].payload.index()) << i;
  }
}

TEST(SelfProfile, ScopedPhaseIsInertOnNullProfiler) {
  ScopedPhase inert(nullptr, SimPhase::EventLoop);
  PhaseProfiler profiler;
  {
    MCSIM_TRACE_PHASE(&profiler, SimPhase::Setup);
  }
  EXPECT_GE(profiler.seconds(SimPhase::Setup), 0.0);
  EXPECT_DOUBLE_EQ(profiler.seconds(SimPhase::EventLoop), 0.0);
  EXPECT_GE(profiler.totalSeconds(), 0.0);
}

}  // namespace
}  // namespace mcsim::obs
