// Determinism replay: the whole point of seeding every fault model through
// the portable Rng is that a run is a pure function of (workflow, config).
// Two simulations with identical seeds must produce byte-identical JSONL
// event streams and identical costs; changing only the fault seed must
// change the outcome; and configurations written against the deprecated
// taskFailureProbability shim must replay exactly under faults.legacy.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tests/common/fixtures.hpp"
#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/faults/faults.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/jsonl.hpp"

namespace mcsim::faults {
namespace {

struct Replay {
  std::string jsonl;
  engine::ExecutionResult result;
};

Replay run(const dag::Workflow& wf, engine::EngineConfig cfg) {
  Replay r;
  std::ostringstream os;
  obs::JsonlSink sink(os);
  cfg.observer = &sink;
  r.result = engine::simulateWorkflow(wf, cfg);
  r.jsonl = os.str();
  return r;
}

engine::EngineConfig faultyConfig(std::uint64_t seed) {
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::RemoteIO;
  cfg.processors = 4;
  cfg.faults.processor.mtbfSeconds = 120.0;
  cfg.faults.retry.kind = RetryPolicyKind::ExponentialBackoff;
  cfg.faults.retry.maxRetries = 10;
  cfg.faults.retry.delaySeconds = 5.0;
  cfg.faults.retry.jitterFraction = 0.3;
  cfg.faults.seed = seed;
  return cfg;
}

TEST(Replay, IdenticalSeedsGiveByteIdenticalStreamsAndCosts) {
  const dag::Workflow wf = dag::makeRandomWorkflow(77);
  const Replay a = run(wf, faultyConfig(9));
  const Replay b = run(wf, faultyConfig(9));

  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  const cloud::Pricing pricing = cloud::Pricing::amazon2008();
  EXPECT_DOUBLE_EQ(
      engine::computeCost(a.result, pricing, cloud::CpuBillingMode::Usage)
          .total()
          .value(),
      engine::computeCost(b.result, pricing, cloud::CpuBillingMode::Usage)
          .total()
          .value());
  EXPECT_EQ(a.result.processorCrashes, b.result.processorCrashes);
  EXPECT_EQ(a.result.taskRetries, b.result.taskRetries);
  EXPECT_DOUBLE_EQ(a.result.makespanSeconds, b.result.makespanSeconds);
  EXPECT_DOUBLE_EQ(a.result.wastedCpuSeconds, b.result.wastedCpuSeconds);
}

TEST(Replay, TheFaultSeedActuallySteersTheRun) {
  const dag::Workflow wf = dag::makeRandomWorkflow(77);
  const Replay a = run(wf, faultyConfig(9));
  const Replay b = run(wf, faultyConfig(10));
  // Deterministically different: seed 9 and 10 draw different crash times.
  EXPECT_NE(a.jsonl, b.jsonl);
}

TEST(Replay, MontageUnderFaultsReplaysExactly) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.5);
  engine::EngineConfig cfg = faultyConfig(4);
  cfg.mode = engine::DataMode::DynamicCleanup;
  const Replay a = run(wf, cfg);
  const Replay b = run(wf, cfg);
  EXPECT_GT(a.result.processorCrashes, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
}

TEST(Replay, ConfiguredButInertFaultsPreserveTheBaselineStream) {
  // A fault config whose models are all disabled (different seed included)
  // must not perturb the event stream in any way: no extra draws, no extra
  // calendar entries.
  const dag::Workflow wf = test::makeForkJoinWorkflow(4);
  engine::EngineConfig plain;
  plain.processors = 3;
  engine::EngineConfig inert = plain;
  inert.faults.seed = 999;
  inert.faults.retry.maxRetries = 7;
  inert.faults.retry.delaySeconds = 3.0;
  EXPECT_EQ(run(wf, plain).jsonl, run(wf, inert).jsonl);
}

TEST(Replay, LegacyShimMatchesFaultsLegacyExactly) {
  const dag::Workflow wf = dag::makeRandomWorkflow(41);
  engine::EngineConfig shim;
  shim.processors = 4;
  shim.taskFailureProbability = 0.3;
  shim.failureSeed = 17;

  engine::EngineConfig direct;
  direct.processors = 4;
  direct.faults.legacy.probability = 0.3;
  direct.faults.legacy.seed = 17;

  const Replay a = run(wf, shim);
  const Replay b = run(wf, direct);
  EXPECT_GT(a.result.taskRetries, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_DOUBLE_EQ(a.result.cpuBusySeconds, b.result.cpuBusySeconds);
  // The shim overrides faults.legacy when both are set.
  engine::EngineConfig both = direct;
  both.faults.legacy.probability = 0.9;
  both.taskFailureProbability = 0.3;
  both.failureSeed = 17;
  EXPECT_EQ(run(wf, both).jsonl, a.jsonl);
}

}  // namespace
}  // namespace mcsim::faults
