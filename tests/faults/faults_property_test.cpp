// Property tests for the fault-injected engine over random DAGs: every
// task's fate is accounted for, retry budgets are respected in the event
// stream itself, preempted work is billed exactly once, and the attributed
// cost report still reconciles with engine::computeCost to the cent.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/faults/faults.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::faults {
namespace {

/// Collects the fault-relevant lifecycle events of one run, keyed by task.
class FaultLog final : public obs::Sink {
 public:
  void onEvent(const obs::Event& event) override {
    std::visit(
        [this](const auto& p) {
          using T = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<T, obs::ProcessorCrashed>)
            crashed_.insert(p.task);
          else if constexpr (std::is_same_v<T, obs::TaskRetryScheduled>)
            ++retriesGranted_[p.task];
          else if constexpr (std::is_same_v<T, obs::TaskFinished>)
            finished_.insert(p.task);
          else if constexpr (std::is_same_v<T, obs::TaskFailed>)
            failed_.insert(p.task);
          else if constexpr (std::is_same_v<T, obs::TaskAbandoned>)
            abandoned_.insert(p.task);
        },
        event.payload);
  }

  std::set<std::uint32_t> crashed_, finished_, failed_, abandoned_;
  std::map<std::uint32_t, int> retriesGranted_;
};

class FaultProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    wf_ = std::make_unique<dag::Workflow>(dag::makeRandomWorkflow(GetParam()));
    cfg_.processors = 4;
    cfg_.faults.processor.mtbfSeconds = 200.0;  // crashes are common
    cfg_.faults.retry.maxRetries = 3;
    cfg_.faults.retry.delaySeconds = 2.0;
    cfg_.faults.seed = GetParam() + 1;
  }
  std::unique_ptr<dag::Workflow> wf_;
  engine::EngineConfig cfg_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperties,
                         ::testing::Range<std::uint64_t>(700, 724));

TEST_P(FaultProperties, EveryTaskCompletesOrIsReportedFailedOrAbandoned) {
  FaultLog log;
  cfg_.observer = &log;
  const auto r = engine::simulateWorkflow(*wf_, cfg_);

  EXPECT_EQ(r.tasksExecuted + r.tasksFailed + r.tasksAbandoned,
            wf_->taskCount());
  EXPECT_EQ(log.finished_.size(), r.tasksExecuted);
  EXPECT_EQ(log.failed_.size(), r.tasksFailed);
  EXPECT_EQ(log.abandoned_.size(), r.tasksAbandoned);

  // Every preempted task was eventually completed or reported failed —
  // never silently dropped (abandonment only happens to tasks that never
  // started).
  for (const std::uint32_t task : log.crashed_) {
    EXPECT_TRUE(log.finished_.count(task) || log.failed_.count(task))
        << "task " << task << " crashed and then vanished";
  }
  // The three fates are mutually exclusive.
  for (const std::uint32_t task : log.finished_) {
    EXPECT_FALSE(log.failed_.count(task));
    EXPECT_FALSE(log.abandoned_.count(task));
  }
  for (const std::uint32_t task : log.failed_)
    EXPECT_FALSE(log.abandoned_.count(task));
}

TEST_P(FaultProperties, NoTaskIsRetriedPastItsBudgetInTheEventStream) {
  FaultLog log;
  cfg_.observer = &log;
  const auto r = engine::simulateWorkflow(*wf_, cfg_);

  std::size_t totalRetries = 0;
  for (const auto& [task, granted] : log.retriesGranted_) {
    EXPECT_LE(granted, cfg_.faults.retry.maxRetries);
    totalRetries += static_cast<std::size_t>(granted);
  }
  EXPECT_EQ(totalRetries, r.taskRetries);
  // A permanently failed task consumed its whole budget first.
  for (const std::uint32_t task : log.failed_)
    EXPECT_EQ(log.retriesGranted_[task], cfg_.faults.retry.maxRetries);
}

TEST_P(FaultProperties, BilledCpuIsFinishedWorkPlusWaste) {
  const auto r = engine::simulateWorkflow(*wf_, cfg_);
  // Each completed task bills its full runtime exactly once; every crash
  // bills exactly the partial time it ran.  tasksExecuted runtimes are not
  // uniform, so recompute the finished-work sum from the trace.
  engine::EngineConfig traced = cfg_;
  traced.trace = true;
  const auto rt = engine::simulateWorkflow(*wf_, traced);
  double finishedWork = 0.0;
  for (const dag::Task& t : wf_->tasks())
    if (rt.taskRecords[t.id].finishTime >= 0.0)
      finishedWork += t.runtimeSeconds;
  EXPECT_NEAR(rt.cpuBusySeconds, finishedWork + rt.wastedCpuSeconds, 1e-6);
  // Tracing must not perturb the simulation.
  EXPECT_DOUBLE_EQ(r.cpuBusySeconds, rt.cpuBusySeconds);
  EXPECT_EQ(r.processorCrashes, rt.processorCrashes);
}

TEST_P(FaultProperties, AttributedCostStillReconcilesToTheCent) {
  obs::ReportBuilder builder;
  cfg_.observer = &builder;
  const auto r = engine::simulateWorkflow(*wf_, cfg_);

  const cloud::Pricing pricing = cloud::Pricing::amazon2008();
  for (const auto billing :
       {cloud::CpuBillingMode::Usage, cloud::CpuBillingMode::Provisioned}) {
    const obs::RunReport report = builder.build(*wf_, r, pricing, billing);
    const auto expected = engine::computeCost(r, pricing, billing);
    EXPECT_DOUBLE_EQ(report.totals.total().value(), expected.total().value());

    Money attributed = report.staging.total() + report.unattributedCpu;
    for (const obs::TaskCost& t : report.byTask) attributed += t.cost.total();
    EXPECT_NEAR(attributed.value(), expected.total().value(), 0.01)
        << "attributed breakdown drifted from the billed total";
  }
}

TEST_P(FaultProperties, RemoteModeFaultsOnlyAddTransfers) {
  cfg_.mode = engine::DataMode::RemoteIO;
  engine::EngineConfig clean = cfg_;
  clean.faults = {};
  const auto base = engine::simulateWorkflow(*wf_, clean);
  const auto faulty = engine::simulateWorkflow(*wf_, cfg_);
  if (faulty.completed()) {
    // All work eventually done: outputs delivered in full, inputs staged at
    // least as often as the fault-free run.
    EXPECT_NEAR(faulty.bytesOut.value(), base.bytesOut.value(), 1.0);
    EXPECT_GE(faulty.bytesIn.value(), base.bytesIn.value() - 1.0);
  } else {
    // An incomplete run cannot have delivered more than the baseline.
    EXPECT_LE(faulty.bytesOut.value(), base.bytesOut.value() + 1.0);
  }
  EXPECT_GE(faulty.cpuBusySeconds, faulty.wastedCpuSeconds - 1e-9);
}

TEST_P(FaultProperties, DeadlineNeverExtendsTheRun) {
  const auto free = engine::simulateWorkflow(*wf_, cfg_);
  cfg_.faults.deadlineSeconds = free.makespanSeconds * 0.6;
  const auto bounded = engine::simulateWorkflow(*wf_, cfg_);
  EXPECT_LE(bounded.makespanSeconds, cfg_.faults.deadlineSeconds + 1e-9);
  EXPECT_TRUE(bounded.deadlineExceeded);
  EXPECT_LE(bounded.tasksExecuted, free.tasksExecuted);
}

}  // namespace
}  // namespace mcsim::faults
