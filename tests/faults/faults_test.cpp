// Unit tests for the fault models and their engine mechanics: retry
// policies, outage schedules, the crash model's preemption/billing, failure
// propagation and deadlines.
#include "mcsim/faults/faults.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tests/common/fixtures.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::faults {
namespace {

TEST(RetryPolicy, FixedDelayIgnoresAttemptIndex) {
  RetryPolicy p;
  p.kind = RetryPolicyKind::Fixed;
  p.delaySeconds = 7.0;
  EXPECT_DOUBLE_EQ(p.baseDelay(0), 7.0);
  EXPECT_DOUBLE_EQ(p.baseDelay(5), 7.0);
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy p;
  p.kind = RetryPolicyKind::ExponentialBackoff;
  p.delaySeconds = 2.0;
  p.multiplier = 3.0;
  p.maxDelaySeconds = 30.0;
  EXPECT_DOUBLE_EQ(p.baseDelay(0), 2.0);
  EXPECT_DOUBLE_EQ(p.baseDelay(1), 6.0);
  EXPECT_DOUBLE_EQ(p.baseDelay(2), 18.0);
  EXPECT_DOUBLE_EQ(p.baseDelay(3), 30.0);  // capped, not 54
  EXPECT_DOUBLE_EQ(p.baseDelay(9), 30.0);
}

TEST(RetryPolicy, JitterStretchesWithinTheConfiguredFraction) {
  RetryPolicy p;
  p.delaySeconds = 10.0;
  p.jitterFraction = 0.5;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double d = p.delayFor(0, &rng);
    EXPECT_GE(d, 10.0);
    EXPECT_LT(d, 15.0);
  }
}

TEST(RetryPolicy, JitterWithoutRngThrows) {
  RetryPolicy p;
  p.delaySeconds = 1.0;
  p.jitterFraction = 0.1;
  EXPECT_THROW(p.delayFor(0, nullptr), std::invalid_argument);
  p.jitterFraction = 0.0;
  EXPECT_DOUBLE_EQ(p.delayFor(0, nullptr), 1.0);
}

TEST(RetryPolicy, ValidateRejectsNonsense) {
  RetryPolicy p;
  p.maxRetries = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.delaySeconds = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.jitterFraction = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(Outages, NormalizeSortsAndMergesOverlaps) {
  const auto merged = normalizeOutages({{100.0, 50.0},   // [100,150)
                                        {20.0, 30.0},    // [20,50)
                                        {140.0, 20.0},   // overlaps the first
                                        {50.0, 10.0}});  // adjacent to [20,50)
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].startSeconds, 20.0);
  EXPECT_DOUBLE_EQ(merged[0].endSeconds(), 60.0);
  EXPECT_DOUBLE_EQ(merged[1].startSeconds, 100.0);
  EXPECT_DOUBLE_EQ(merged[1].endSeconds(), 160.0);
}

TEST(Outages, NormalizeRejectsNegativeBounds) {
  EXPECT_THROW(normalizeOutages({{-1.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(normalizeOutages({{1.0, -5.0}}), std::invalid_argument);
}

TEST(Outages, GeneratedScheduleIsDeterministicSortedAndBounded) {
  Rng a(11), b(11);
  const auto s1 = generateOutageSchedule(500.0, 60.0, 10000.0, a);
  const auto s2 = generateOutageSchedule(500.0, 60.0, 10000.0, b);
  ASSERT_EQ(s1.size(), s2.size());
  EXPECT_FALSE(s1.empty());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i].startSeconds, s2[i].startSeconds);
    EXPECT_DOUBLE_EQ(s1[i].durationSeconds, s2[i].durationSeconds);
    EXPECT_LT(s1[i].startSeconds, 10000.0);
    if (i > 0) EXPECT_GE(s1[i].startSeconds, s1[i - 1].endSeconds());
  }
}

TEST(FaultInjector, RetryBudgetIsPerTaskAndExhausts) {
  FaultConfig fc;
  fc.processor.mtbfSeconds = 100.0;
  fc.retry.maxRetries = 2;
  fc.retry.delaySeconds = 1.0;
  FaultInjector inj(fc);
  EXPECT_TRUE(inj.nextRetryDelay(4).has_value());
  EXPECT_TRUE(inj.nextRetryDelay(4).has_value());
  EXPECT_FALSE(inj.nextRetryDelay(4).has_value());  // budget spent
  EXPECT_TRUE(inj.nextRetryDelay(9).has_value());   // other task unaffected
  EXPECT_EQ(inj.attemptsMade(4), 3);
}

TEST(FaultInjector, CrashDrawOnlyLandsInsideTheRuntime) {
  FaultConfig fc;
  fc.processor.mtbfSeconds = 50.0;
  FaultInjector inj(fc);
  for (int i = 0; i < 200; ++i) {
    if (const auto ttf = inj.drawCrashTime(30.0)) {
      EXPECT_GT(*ttf, 0.0);
      EXPECT_LT(*ttf, 30.0);
    }
  }
}

TEST(FaultConfig, AnyEnabledCoversEachModel) {
  FaultConfig fc;
  EXPECT_FALSE(fc.anyEnabled());
  fc.processor.mtbfSeconds = 1.0;
  EXPECT_TRUE(fc.anyEnabled());
  fc = {};
  fc.link.outages = {{1.0, 1.0}};
  EXPECT_TRUE(fc.anyEnabled());
  fc = {};
  fc.storage.outages = {{1.0, 1.0}};
  EXPECT_TRUE(fc.anyEnabled());
  fc = {};
  fc.legacy.probability = 0.5;
  EXPECT_TRUE(fc.anyEnabled());
  fc = {};
  fc.deadlineSeconds = 10.0;
  EXPECT_TRUE(fc.anyEnabled());
}

// ---- engine mechanics ------------------------------------------------------

engine::EngineConfig crashConfig(double mtbf, int retries) {
  engine::EngineConfig cfg;
  cfg.processors = 4;
  cfg.faults.processor.mtbfSeconds = mtbf;
  cfg.faults.retry.maxRetries = retries;
  cfg.faults.retry.delaySeconds = 1.0;
  cfg.faults.seed = 5;
  return cfg;
}

TEST(EngineFaults, HostileMtbfExhaustsBudgetsAndFailsTheWorkflow) {
  const dag::Workflow wf = test::makeChainWorkflow(4, 100.0);
  // MTBF far below the runtime: every attempt crashes almost immediately.
  const auto r = engine::simulateWorkflow(wf, crashConfig(0.001, 2));
  EXPECT_EQ(r.tasksFailed, 1u);       // the chain head fails...
  EXPECT_EQ(r.tasksAbandoned, 3u);    // ...sealing all descendants
  EXPECT_EQ(r.tasksExecuted, 0u);
  EXPECT_FALSE(r.completed());
  EXPECT_EQ(r.processorCrashes, 3u);  // 1 + maxRetries attempts
  EXPECT_EQ(r.taskRetries, 2u);
  EXPECT_GT(r.wastedCpuSeconds, 0.0);
  EXPECT_NEAR(r.cpuBusySeconds, r.wastedCpuSeconds, 1e-9);
}

TEST(EngineFaults, FailedBranchStillStagesOutTheSurvivors) {
  // Fork-join: the join can never run once a worker fails, but the run
  // finishes and reports the abandonment chain.
  const dag::Workflow wf = test::makeForkJoinWorkflow(3, 50.0);
  const auto r = engine::simulateWorkflow(wf, crashConfig(0.001, 1));
  EXPECT_FALSE(r.completed());
  EXPECT_GE(r.tasksFailed, 1u);
  EXPECT_EQ(r.tasksExecuted + r.tasksFailed + r.tasksAbandoned,
            wf.taskCount());
}

TEST(EngineFaults, RemoteCrashRestagesInputs) {
  const dag::Workflow wf = test::makeChainWorkflow(3, 50.0);
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::RemoteIO;
  cfg.processors = 2;
  const auto clean = engine::simulateWorkflow(wf, cfg);

  cfg.faults.processor.mtbfSeconds = 60.0;
  cfg.faults.retry.maxRetries = 50;  // ample: the workflow must complete
  cfg.faults.seed = 3;
  const auto faulty = engine::simulateWorkflow(wf, cfg);
  ASSERT_GT(faulty.processorCrashes, 0u);
  EXPECT_TRUE(faulty.completed());
  // Every crash threw away staged inputs; the retry transferred them again.
  EXPECT_GT(faulty.bytesIn.value(), clean.bytesIn.value());
  EXPECT_GT(faulty.transfersIn, clean.transfersIn);
  EXPECT_NEAR(faulty.cpuBusySeconds,
              wf.totalRuntimeSeconds() + faulty.wastedCpuSeconds, 1e-6);
}

TEST(EngineFaults, DeadlinePreemptsAndReportsIncomplete) {
  const dag::Workflow wf = test::makeChainWorkflow(5, 100.0);
  engine::EngineConfig cfg;
  cfg.processors = 1;
  cfg.faults.deadlineSeconds = 250.0;  // mid third task
  const auto r = engine::simulateWorkflow(wf, cfg);
  EXPECT_TRUE(r.deadlineExceeded);
  EXPECT_FALSE(r.completed());
  EXPECT_EQ(r.tasksExecuted, 2u);
  EXPECT_NEAR(r.makespanSeconds, 250.0, 1e-9);
  // The third task was mid-flight (the run starts with a 0.8 s stage-in, so
  // it had run 49.2 s); its partial work is billed as waste.
  EXPECT_GT(r.wastedCpuSeconds, 0.0);
  EXPECT_LT(r.wastedCpuSeconds, 100.0);
  EXPECT_NEAR(r.cpuBusySeconds, 200.0 + r.wastedCpuSeconds, 1e-6);
}

TEST(EngineFaults, GenerousDeadlineChangesNothing) {
  const dag::Workflow wf = test::makeChainWorkflow(4, 10.0);
  engine::EngineConfig cfg;
  cfg.processors = 2;
  const auto base = engine::simulateWorkflow(wf, cfg);
  cfg.faults.deadlineSeconds = 1e9;
  const auto bounded = engine::simulateWorkflow(wf, cfg);
  EXPECT_FALSE(bounded.deadlineExceeded);
  EXPECT_TRUE(bounded.completed());
  EXPECT_DOUBLE_EQ(bounded.makespanSeconds, base.makespanSeconds);
  EXPECT_DOUBLE_EQ(bounded.cpuBusySeconds, base.cpuBusySeconds);
}

TEST(EngineFaults, StorageOutageDefersCompletionAndExtendsMakespan) {
  // One 10 s task; storage is down over [5, 40): the task finishes computing
  // at 10 but can only commit its output at 40.
  const dag::Workflow wf = test::makeChainWorkflow(1, 10.0);
  engine::EngineConfig cfg;
  cfg.processors = 1;
  const auto base = engine::simulateWorkflow(wf, cfg);
  cfg.faults.storage.outages = {{5.0, 35.0}};
  const auto r = engine::simulateWorkflow(wf, cfg);
  EXPECT_TRUE(r.completed());
  // Output committed at 40 (window end), then the 0.8 s stage-out.
  EXPECT_NEAR(r.makespanSeconds, 40.8, 1e-6);
  EXPECT_GT(r.makespanSeconds, base.makespanSeconds);
  EXPECT_DOUBLE_EQ(r.cpuBusySeconds, base.cpuBusySeconds);
}

TEST(EngineFaults, LinkOutageWindowsStallTransfers) {
  const dag::Workflow wf = test::makeChainWorkflow(1, 10.0);
  engine::EngineConfig cfg;
  cfg.processors = 1;
  const auto base = engine::simulateWorkflow(wf, cfg);
  // The stage-in starts at t=0; a [0, 60) fault-model link outage delays it.
  cfg.faults.link.outages = {{0.0, 60.0}};
  const auto r = engine::simulateWorkflow(wf, cfg);
  EXPECT_NEAR(r.makespanSeconds - base.makespanSeconds, 60.0, 1e-6);
}

TEST(EngineFaults, ValidationRejectsBadFaultConfigs) {
  const dag::Workflow wf = test::makeChainWorkflow(1);
  engine::EngineConfig cfg;
  cfg.faults.processor.mtbfSeconds = -1.0;
  EXPECT_THROW(engine::simulateWorkflow(wf, cfg), std::invalid_argument);
  cfg = {};
  cfg.faults.deadlineSeconds = -5.0;
  EXPECT_THROW(engine::simulateWorkflow(wf, cfg), std::invalid_argument);
  cfg = {};
  cfg.faults.retry.multiplier = 0.0;
  cfg.faults.processor.mtbfSeconds = 10.0;
  EXPECT_THROW(engine::simulateWorkflow(wf, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::faults
