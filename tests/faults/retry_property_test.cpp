// Property tests for retry policies: budget caps, backoff monotonicity and
// jitter bounds must hold for every configuration, not just the defaults.
#include <gtest/gtest.h>

#include "mcsim/faults/faults.hpp"
#include "mcsim/util/rng.hpp"

namespace mcsim::faults {
namespace {

class RetryProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RetryProperties,
                         ::testing::Range<std::uint64_t>(500, 520));

RetryPolicy randomPolicy(Rng& rng) {
  RetryPolicy p;
  p.kind = rng.chance(0.5) ? RetryPolicyKind::Fixed
                           : RetryPolicyKind::ExponentialBackoff;
  p.maxRetries = static_cast<int>(rng.uniformInt(0, 8));
  p.delaySeconds = rng.uniformReal(0.0, 60.0);
  p.multiplier = rng.uniformReal(1.0, 4.0);
  p.maxDelaySeconds = rng.chance(0.5) ? rng.uniformReal(1.0, 300.0) : 0.0;
  p.jitterFraction = rng.chance(0.5) ? rng.uniformReal(0.0, 1.0) : 0.0;
  return p;
}

TEST_P(RetryProperties, BaseDelayIsMonotoneAndRespectsTheCap) {
  Rng rng(GetParam());
  const RetryPolicy p = randomPolicy(rng);
  p.validate();
  for (int i = 1; i < 12; ++i) {
    EXPECT_GE(p.baseDelay(i), p.baseDelay(i - 1) - 1e-12);
    if (p.maxDelaySeconds > 0.0)
      EXPECT_LE(p.baseDelay(i), p.maxDelaySeconds + 1e-12);
  }
}

TEST_P(RetryProperties, JitteredDelayStaysInsideItsEnvelope) {
  Rng rng(GetParam());
  const RetryPolicy p = randomPolicy(rng);
  Rng jitterRng(GetParam() * 31 + 1);
  for (int i = 0; i < 12; ++i) {
    const double base = p.baseDelay(i);
    const double d = p.delayFor(i, &jitterRng);
    EXPECT_GE(d, base - 1e-12);
    EXPECT_LE(d, base * (1.0 + p.jitterFraction) + 1e-9);
  }
}

TEST_P(RetryProperties, NoTaskIsEverGrantedMoreThanItsBudget) {
  Rng rng(GetParam());
  FaultConfig fc;
  fc.retry = randomPolicy(rng);
  fc.processor.mtbfSeconds = rng.uniformReal(1.0, 1000.0);
  fc.seed = GetParam();
  FaultInjector inj(fc);
  for (std::uint32_t task = 0; task < 16; ++task) {
    int granted = 0;
    // Ask for far more retries than the budget allows.
    for (int i = 0; i < fc.retry.maxRetries + 5; ++i)
      if (inj.nextRetryDelay(task)) ++granted;
    EXPECT_EQ(granted, fc.retry.maxRetries);
    // Once exhausted, the budget stays exhausted.
    EXPECT_FALSE(inj.nextRetryDelay(task).has_value());
    EXPECT_EQ(inj.attemptsMade(task), fc.retry.maxRetries + 1);
  }
}

TEST_P(RetryProperties, GrantedDelaysFollowThePolicyOrder) {
  Rng rng(GetParam());
  FaultConfig fc;
  fc.retry = randomPolicy(rng);
  fc.retry.jitterFraction = 0.0;  // isolate the base schedule
  fc.seed = GetParam();
  FaultInjector inj(fc);
  double prev = -1.0;
  while (const auto d = inj.nextRetryDelay(0)) {
    EXPECT_GE(*d, prev - 1e-12);  // fixed: equal; backoff: non-decreasing
    prev = *d;
  }
}

}  // namespace
}  // namespace mcsim::faults
