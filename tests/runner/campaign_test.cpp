// runner::runCampaign: shard aggregation arithmetic, campaign-level obs
// events, determinism across worker counts, and argument contracts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/campaign.hpp"
#include "mcsim/workflows/survey.hpp"

namespace mcsim::runner {
namespace {

std::vector<dag::Workflow> makeShards(std::uint64_t tiles,
                                      std::uint32_t shards) {
  workflows::SurveyConfig cfg;
  cfg.name = "campaign-test";
  cfg.tiles = tiles;
  cfg.seed = 3;
  cfg.runtimeJitterFraction = 0.4;
  return workflows::buildSurveyShards(cfg, shards);
}

TEST(CampaignTest, AggregatesMatchTheShardResults) {
  const auto shards = makeShards(7, 3);
  CampaignOptions options;
  options.engine.processors = 8;
  options.jobs = 0;
  const CampaignResult campaign = runCampaign(shards, options);

  ASSERT_EQ(campaign.shards, 3u);
  ASSERT_EQ(campaign.shardResults.size(), 3u);
  EXPECT_TRUE(campaign.completed);

  std::size_t tasks = 0;
  double maxMakespan = 0.0, sumMakespan = 0.0, cpu = 0.0;
  double bytesIn = 0.0, bytesOut = 0.0;
  for (const ScenarioResult& shard : campaign.shardResults) {
    tasks += shard.result.tasksExecuted;
    maxMakespan = std::max(maxMakespan, shard.result.makespanSeconds);
    sumMakespan += shard.result.makespanSeconds;
    cpu += shard.result.cpuBusySeconds;
    bytesIn += shard.result.bytesIn.value();
    bytesOut += shard.result.bytesOut.value();
  }
  EXPECT_EQ(campaign.tasks, tasks);
  EXPECT_DOUBLE_EQ(campaign.makespanSeconds, maxMakespan);
  EXPECT_DOUBLE_EQ(campaign.serializedMakespanSeconds, sumMakespan);
  EXPECT_DOUBLE_EQ(campaign.totalCpuSeconds, cpu);
  EXPECT_DOUBLE_EQ(campaign.bytesIn.value(), bytesIn);
  EXPECT_DOUBLE_EQ(campaign.bytesOut.value(), bytesOut);
  // Concurrent shards can't take longer than running them back to back.
  EXPECT_LE(campaign.makespanSeconds, campaign.serializedMakespanSeconds);

  // All seven tiles' tasks are accounted for exactly once.
  workflows::SurveyConfig cfg;
  cfg.tiles = 7;
  EXPECT_EQ(campaign.tasks, workflows::surveyCounts(cfg).tasks);
}

TEST(CampaignTest, EmitsShardAndCampaignEvents) {
  const auto shards = makeShards(5, 2);
  obs::CollectingSink sink;
  CampaignOptions options;
  options.engine.processors = 4;
  options.jobs = 0;
  options.observer = &sink;
  const CampaignResult campaign = runCampaign(shards, options);

  std::size_t shardEvents = 0, campaignEvents = 0;
  for (const obs::Event& event : sink.events()) {
    if (const auto* s = std::get_if<obs::ShardCompleted>(&event.payload)) {
      EXPECT_EQ(s->shards, 2u);
      EXPECT_EQ(event.time,
                campaign.shardResults[s->shard].result.makespanSeconds);
      EXPECT_EQ(s->tasks,
                campaign.shardResults[s->shard].result.tasksExecuted);
      ++shardEvents;
    } else if (const auto* c =
                   std::get_if<obs::CampaignCompleted>(&event.payload)) {
      EXPECT_EQ(c->shards, 2u);
      EXPECT_EQ(c->tasks, campaign.tasks);
      EXPECT_DOUBLE_EQ(c->makespanSeconds, campaign.makespanSeconds);
      EXPECT_DOUBLE_EQ(c->totalCpuSeconds, campaign.totalCpuSeconds);
      ++campaignEvents;
    }
  }
  EXPECT_EQ(shardEvents, 2u);
  EXPECT_EQ(campaignEvents, 1u);
}

TEST(CampaignTest, ResultsAreIdenticalAcrossWorkerCounts) {
  const auto shards = makeShards(6, 3);
  CampaignOptions serial;
  serial.engine.processors = 8;
  serial.jobs = 0;
  CampaignOptions parallel = serial;
  parallel.jobs = 3;

  const CampaignResult a = runCampaign(shards, serial);
  const CampaignResult b = runCampaign(shards, parallel);
  ASSERT_EQ(a.shardResults.size(), b.shardResults.size());
  for (std::size_t i = 0; i < a.shardResults.size(); ++i) {
    EXPECT_EQ(a.shardResults[i].index, b.shardResults[i].index);
    EXPECT_EQ(a.shardResults[i].result.makespanSeconds,
              b.shardResults[i].result.makespanSeconds);
    EXPECT_EQ(a.shardResults[i].result.cpuBusySeconds,
              b.shardResults[i].result.cpuBusySeconds);
    EXPECT_EQ(a.shardResults[i].result.bytesIn.value(),
              b.shardResults[i].result.bytesIn.value());
  }
  EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
  EXPECT_EQ(a.totalCpuSeconds, b.totalCpuSeconds);
}

TEST(CampaignTest, RejectsEmptyShardsAndPerShardObservers) {
  EXPECT_THROW(runCampaign({}, {}), std::invalid_argument);

  const auto shards = makeShards(2, 2);
  obs::CollectingSink sink;
  CampaignOptions options;
  options.engine.observer = &sink;  // must go through CampaignOptions
  EXPECT_THROW(runCampaign(shards, options), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::runner
