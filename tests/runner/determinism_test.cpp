// The runner's headline guarantee, tested end to end: a sweep run on 8
// worker threads is byte-identical to the serial legacy code path — same
// points, same merged JSONL telemetry stream, same report.json per
// scenario.  ISSUE: "figures must never depend on the machine's core
// count".
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "mcsim/analysis/experiments.hpp"
#include "mcsim/analysis/reliability.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/report.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim {
namespace {

const cloud::Pricing kAmazon = cloud::Pricing::amazon2008();

/// The provisioning sweep's merged JSONL stream under `jobs` workers.
std::string sweepJsonl(const dag::Workflow& wf, int jobs) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  analysis::ProvisioningSweepConfig config;
  config.processorCounts = {1, 2, 4, 8};
  config.jobs = jobs;
  config.observer = &sink;
  analysis::provisioningSweep(wf, kAmazon, config);
  return os.str();
}

TEST(Determinism, ProvisioningPointsIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  analysis::ProvisioningSweepConfig config;
  config.processorCounts = {1, 2, 4, 8, 16};

  config.jobs = 0;
  const auto serial = analysis::provisioningSweep(wf, kAmazon, config);
  config.jobs = 8;
  const auto parallel = analysis::provisioningSweep(wf, kAmazon, config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].processors, parallel[i].processors) << i;
    EXPECT_EQ(serial[i].makespanSeconds, parallel[i].makespanSeconds) << i;
    EXPECT_EQ(serial[i].cpuCost.value(), parallel[i].cpuCost.value()) << i;
    EXPECT_EQ(serial[i].storageCost.value(), parallel[i].storageCost.value())
        << i;
    EXPECT_EQ(serial[i].storageCleanupCost.value(),
              parallel[i].storageCleanupCost.value())
        << i;
    EXPECT_EQ(serial[i].transferCost.value(), parallel[i].transferCost.value())
        << i;
    EXPECT_EQ(serial[i].totalCost.value(), parallel[i].totalCost.value()) << i;
    EXPECT_EQ(serial[i].utilization, parallel[i].utilization) << i;
  }
}

TEST(Determinism, MergedJsonlByteIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const std::string serial = sweepJsonl(wf, 0);
  const std::string parallel = sweepJsonl(wf, 8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, DataModeRowsIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  analysis::DataModeComparisonConfig config;
  config.jobs = 0;
  const auto serial = analysis::dataModeComparison(wf, kAmazon, config);
  config.jobs = 8;
  const auto parallel = analysis::dataModeComparison(wf, kAmazon, config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].makespanSeconds, parallel[i].makespanSeconds) << i;
    EXPECT_EQ(serial[i].storageGBHours, parallel[i].storageGBHours) << i;
    EXPECT_EQ(serial[i].totalCost().value(), parallel[i].totalCost().value())
        << i;
  }
}

TEST(Determinism, CcrPointsIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  analysis::CcrSweepConfig config;
  config.ccrTargets = {0.1, 0.5, 2.0};
  config.jobs = 0;
  const auto serial = analysis::ccrSweep(wf, kAmazon, config);
  config.jobs = 8;
  const auto parallel = analysis::ccrSweep(wf, kAmazon, config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].makespanSeconds, parallel[i].makespanSeconds) << i;
    EXPECT_EQ(serial[i].totalCost.value(), parallel[i].totalCost.value()) << i;
  }
}

TEST(Determinism, ReliabilityPointsIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  analysis::ReliabilityConfig rc;
  rc.mtbfSeconds = {600.0, 3600.0};
  rc.jobs = 0;
  const auto serial = analysis::reliabilitySweep(wf, kAmazon, rc);
  rc.jobs = 8;
  const auto parallel = analysis::reliabilitySweep(wf, kAmazon, rc);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].makespanSeconds, parallel[i].makespanSeconds) << i;
    EXPECT_EQ(serial[i].processorCrashes, parallel[i].processorCrashes) << i;
    EXPECT_EQ(serial[i].taskRetries, parallel[i].taskRetries) << i;
    EXPECT_EQ(serial[i].totalCost.value(), parallel[i].totalCost.value()) << i;
  }
}

/// Per-scenario report.json byte-identity: replay each scenario's retained
/// event stream through a ReportBuilder and serialize.
TEST(Determinism, PerScenarioReportJsonByteIdenticalAcrossJobs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  std::vector<runner::ScenarioSpec> specs;
  for (int p : {1, 4, 16}) {
    runner::ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = p;
    specs.push_back(spec);
  }

  auto reports = [&](int jobs) {
    runner::RunnerOptions options;
    options.jobs = jobs;
    options.keepEvents = true;
    const auto results = runner::runScenarios(specs, options);
    std::vector<std::string> out;
    for (const runner::ScenarioResult& r : results) {
      obs::ReportBuilder builder;
      for (const obs::Event& e : r.events)
        if (builder.accepts(obs::kind(e))) builder.onEvent(e);
      std::ostringstream os;
      obs::writeReportJson(
          os, builder.build(wf, r.result, kAmazon,
                            cloud::CpuBillingMode::Provisioned));
      out.push_back(os.str());
    }
    return out;
  };

  const auto serial = reports(0);
  const auto parallel = reports(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << i;
  }
}

}  // namespace
}  // namespace mcsim
