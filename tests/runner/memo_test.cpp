// Scenario memo cache: fingerprint discrimination, byte-identical cache
// hits (results AND event streams), deterministic hit/miss accounting
// surfaced through obs, and jobs-independence with a cache attached.  This
// file backs the `perf`-labeled ctest smoke test guarding the memo-cache
// identity contract.
#include "mcsim/runner/memo.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::runner {
namespace {

/// Serialize an event stream to JSONL — the byte-identity yardstick.
std::string toJsonl(const std::vector<obs::Event>& events) {
  std::ostringstream os;
  for (const obs::Event& e : events) {
    obs::writeEventJson(os, e);
    os << '\n';
  }
  return os.str();
}

std::vector<ScenarioSpec> montageBatch(const dag::Workflow& wf, int copies) {
  std::vector<ScenarioSpec> specs;
  for (int c = 0; c < copies; ++c)
    for (int procs : {2, 4}) {
      ScenarioSpec spec;
      spec.workflow = &wf;
      spec.config.processors = procs;
      spec.config.mode = engine::DataMode::DynamicCleanup;
      spec.label = "p=" + std::to_string(procs);
      specs.push_back(spec);
    }
  return specs;
}

TEST(ScenarioFingerprint, DiscriminatesEveryConfigKnob) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  engine::EngineConfig base;
  const std::uint64_t key = fingerprintScenario(wf, base, false);
  EXPECT_EQ(key, fingerprintScenario(wf, base, false));  // stable

  engine::EngineConfig c = base;
  c.processors = 9;
  EXPECT_NE(fingerprintScenario(wf, c, false), key);
  c = base;
  c.mode = engine::DataMode::RemoteIO;
  EXPECT_NE(fingerprintScenario(wf, c, false), key);
  c = base;
  c.linkBandwidthBytesPerSec *= 2;
  EXPECT_NE(fingerprintScenario(wf, c, false), key);
  c = base;
  c.faults.seed = 99;
  EXPECT_NE(fingerprintScenario(wf, c, false), key);
  c = base;
  c.referenceCore = true;
  EXPECT_NE(fingerprintScenario(wf, c, false), key);
  // The capture shape is part of the key: an event-free entry must never
  // serve a capturing caller.
  EXPECT_NE(fingerprintScenario(wf, base, true), key);
}

TEST(ScenarioFingerprint, DiscriminatesWorkflowContent) {
  const dag::Workflow small = montage::buildMontageWorkflow(0.4);
  const dag::Workflow large = montage::buildMontageWorkflow(1.0);
  EXPECT_NE(fingerprintWorkflow(small), fingerprintWorkflow(large));
  // Two independent builds of the same degree hash identically: the
  // fingerprint is content, not identity.
  const dag::Workflow again = montage::buildMontageWorkflow(0.4);
  EXPECT_EQ(fingerprintWorkflow(small), fingerprintWorkflow(again));
}

TEST(ScenarioMemoCacheTest, WarmRunIsByteIdenticalToCold) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto specs = montageBatch(wf, 1);

  ScenarioMemoCache cache;
  RunnerOptions options;
  options.jobs = 0;
  options.keepEvents = true;
  options.cache = &cache;

  const auto cold = runScenarios(specs, options);
  const MemoStats coldStats = cache.stats();
  EXPECT_EQ(coldStats.hits, 0u);
  EXPECT_EQ(coldStats.misses, specs.size());
  EXPECT_EQ(coldStats.entries, specs.size());

  const auto warm = runScenarios(specs, options);
  const MemoStats warmStats = cache.stats();
  EXPECT_EQ(warmStats.hits, specs.size());
  EXPECT_EQ(warmStats.misses, specs.size());  // unchanged

  // Reference: the same batch with no cache at all.
  RunnerOptions plain;
  plain.jobs = 0;
  plain.keepEvents = true;
  const auto fresh = runScenarios(specs, plain);

  ASSERT_EQ(warm.size(), fresh.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_FALSE(cold[i].fromCache);
    EXPECT_TRUE(warm[i].fromCache);
    EXPECT_EQ(warm[i].label, fresh[i].label);
    EXPECT_EQ(warm[i].result.makespanSeconds, fresh[i].result.makespanSeconds);
    EXPECT_EQ(warm[i].result.storageByteSeconds,
              fresh[i].result.storageByteSeconds);
    EXPECT_EQ(warm[i].result.cpuBusySeconds, fresh[i].result.cpuBusySeconds);
    // Byte-identical event streams — the memo contract.
    EXPECT_EQ(toJsonl(warm[i].events), toJsonl(fresh[i].events)) << i;
  }
}

TEST(ScenarioMemoCacheTest, InBatchDuplicatesAreServedOnce) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto specs = montageBatch(wf, 3);  // each point repeated 3x

  ScenarioMemoCache cache;
  RunnerOptions options;
  options.jobs = 0;
  options.keepEvents = true;
  options.cache = &cache;
  const auto results = runScenarios(specs, options);

  const MemoStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);               // two distinct points
  EXPECT_EQ(stats.hits, specs.size() - 2u);  // everything else deduplicated
  EXPECT_EQ(stats.entries, 2u);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::size_t rep = i % 2;  // batch alternates p=2, p=4
    EXPECT_EQ(results[i].fromCache, i >= 2);
    EXPECT_EQ(toJsonl(results[i].events), toJsonl(results[rep].events)) << i;
  }
}

TEST(ScenarioMemoCacheTest, StatsAreEmittedThroughObs) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto specs = montageBatch(wf, 2);

  ScenarioMemoCache cache;
  obs::CollectingSink sink;
  RunnerOptions options;
  options.jobs = 0;
  options.observer = &sink;
  options.cache = &cache;
  runScenarios(specs, options);

  const auto events = sink.take();
  ASSERT_FALSE(events.empty());
  // The cache-stats event is appended after every merged scenario stream.
  const auto* stats =
      std::get_if<obs::ScenarioCacheStats>(&events.back().payload);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->misses, 2u);
  EXPECT_EQ(stats->hits, 2u);
  EXPECT_EQ(stats->entries, 2u);
}

TEST(ScenarioMemoCacheTest, MergedStreamMatchesCachelessRunExactly) {
  // With the stats event stripped, a cached run's merged observer stream
  // must be byte-identical to the cache-less serial stream.
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  const auto specs = montageBatch(wf, 2);

  auto capture = [&](ScenarioMemoCache* cache, int jobs) {
    obs::CollectingSink sink;
    RunnerOptions options;
    options.jobs = jobs;
    options.observer = &sink;
    options.cache = cache;
    runScenarios(specs, options);
    auto events = sink.take();
    if (cache != nullptr) {
      EXPECT_TRUE(std::holds_alternative<obs::ScenarioCacheStats>(
          events.back().payload));
      events.pop_back();
    }
    return toJsonl(events);
  };

  const std::string plain = capture(nullptr, 0);
  ScenarioMemoCache cacheSerial;
  EXPECT_EQ(capture(&cacheSerial, 0), plain);
  ScenarioMemoCache cacheParallel;
  EXPECT_EQ(capture(&cacheParallel, 4), plain);
  // Warm re-run over a populated cache: still the same bytes.
  EXPECT_EQ(capture(&cacheParallel, 4), plain);
}

TEST(ScenarioMemoCacheTest, BaseSeedKeepsFaultScenariosDistinct) {
  // With faults on and a base seed, every index gets its own derived seed,
  // so superficially identical specs must NOT collapse into one entry.
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  std::vector<ScenarioSpec> specs(3);
  for (auto& spec : specs) {
    spec.workflow = &wf;
    spec.config.processors = 4;
    spec.config.faults.processor.mtbfSeconds = 300.0;
    spec.config.faults.retry.maxRetries = 5;
  }

  ScenarioMemoCache cache;
  RunnerOptions options;
  options.jobs = 0;
  options.baseSeed = 1234;
  options.cache = &cache;
  runScenarios(specs, options);

  const MemoStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ScenarioMemoCacheTest, ClearResetsEverything) {
  ScenarioMemoCache cache;
  cache.insert(1, {});
  cache.lookup(1);
  cache.lookup(2);
  cache.clear();
  const MemoStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_FALSE(cache.contains(1));
}

}  // namespace
}  // namespace mcsim::runner
