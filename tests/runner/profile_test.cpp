// Runner self-profiling: WorkerProfile/RunnerBatchProfile events are opt-in,
// carry no simulation clock, arrive only after the deterministic merged
// streams, and never leak into the captured per-scenario events.
#include <gtest/gtest.h>

#include <vector>

#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::runner {
namespace {

std::vector<ScenarioSpec> smallSweep(const dag::Workflow& wf) {
  std::vector<ScenarioSpec> specs;
  for (int procs : {1, 2, 4, 8}) {
    ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = procs;
    spec.label = "p" + std::to_string(procs);
    specs.push_back(spec);
  }
  return specs;
}

bool isProfileKind(obs::EventKind kind) {
  return kind == obs::EventKind::PhaseProfile ||
         kind == obs::EventKind::WorkerProfile ||
         kind == obs::EventKind::RunnerBatchProfile;
}

TEST(RunnerProfile, OffByDefault) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  obs::CollectingSink observer;
  RunnerOptions options;
  options.jobs = 2;
  options.observer = &observer;
  runScenarios(smallSweep(wf), options);
  for (const obs::Event& e : observer.events())
    EXPECT_FALSE(isProfileKind(obs::kind(e)));
}

TEST(RunnerProfile, EmitsWorkerAndBatchProfilesAfterTheMergedStreams) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  const auto specs = smallSweep(wf);

  obs::CollectingSink observer;
  RunnerOptions options;
  options.jobs = 2;
  options.observer = &observer;
  options.profile = true;
  options.keepEvents = true;
  const auto results = runScenarios(specs, options);

  std::size_t workers = 0;
  std::size_t batches = 0;
  std::size_t firstProfile = observer.events().size();
  const auto& events = observer.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::EventKind k = obs::kind(events[i]);
    if (!isProfileKind(k)) {
      // Deterministic stream events must all precede the profile block.
      EXPECT_GT(firstProfile, i) << "profile event before stream event " << i;
      continue;
    }
    firstProfile = std::min(firstProfile, i);
    // Wall-clock events carry no simulation time.
    EXPECT_LT(events[i].time, 0.0);
    if (k == obs::EventKind::WorkerProfile) {
      ++workers;
      const auto& p = std::get<obs::WorkerProfile>(events[i].payload);
      EXPECT_GE(p.worker, 0);
      EXPECT_LT(p.worker, options.jobs);
      EXPECT_GE(p.busySeconds, 0.0);
      EXPECT_GE(p.wallSeconds, p.busySeconds);
    } else if (k == obs::EventKind::RunnerBatchProfile) {
      ++batches;
      const auto& p = std::get<obs::RunnerBatchProfile>(events[i].payload);
      EXPECT_EQ(p.jobs, options.jobs);
      EXPECT_EQ(p.scenarios, specs.size());
      EXPECT_GE(p.wallSeconds, 0.0);
    }
  }
  EXPECT_EQ(workers, static_cast<std::size_t>(options.jobs));
  EXPECT_EQ(batches, 1u);

  // Worker scenario counts cover the whole batch exactly once.
  std::size_t attributed = 0;
  for (const obs::Event& e : events)
    if (obs::kind(e) == obs::EventKind::WorkerProfile)
      attributed += std::get<obs::WorkerProfile>(e.payload).scenarios;
  EXPECT_EQ(attributed, specs.size());

  // Captured per-scenario streams stay deterministic: no profile events.
  ASSERT_EQ(results.size(), specs.size());
  for (const ScenarioResult& r : results)
    for (const obs::Event& e : r.events)
      EXPECT_FALSE(isProfileKind(obs::kind(e)));
}

TEST(RunnerProfile, ProfiledSweepMatchesUnprofiledResults) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.2);
  const auto specs = smallSweep(wf);

  RunnerOptions plain;
  plain.jobs = 2;
  const auto a = runScenarios(specs, plain);

  RunnerOptions profiled;
  profiled.jobs = 2;
  profiled.profile = true;
  const auto b = runScenarios(specs, profiled);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_DOUBLE_EQ(a[i].result.makespanSeconds, b[i].result.makespanSeconds);
    EXPECT_DOUBLE_EQ(a[i].result.cpuBusySeconds, b[i].result.cpuBusySeconds);
  }
}

}  // namespace
}  // namespace mcsim::runner
