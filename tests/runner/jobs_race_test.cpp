// Concurrency hammer for JobQueue, run under TSan by CI's `ctest -L runner`
// sanitizer job: many submitter/waiter/canceller threads against one pool
// must lose no job, complete no job twice, and keep cancelled jobs
// deterministic (empty results, Cancelled state).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/memo.hpp"

namespace mcsim::runner {
namespace {

dag::Workflow tinyWorkflow() { return montage::buildMontageWorkflow(0.2); }

std::vector<ScenarioSpec> tinyBatch(const dag::Workflow& wf, int scenarios) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < scenarios; ++i) {
    ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = 1 + (i % 4);
    specs.push_back(spec);
  }
  return specs;
}

TEST(JobQueueRace, ManySubmittersNoLostOrDoubledJobs) {
  const dag::Workflow wf = tinyWorkflow();
  ScenarioMemoCache cache;  // shared cache maximizes cross-job contention
  obs::NullSink sink;
  JobQueueOptions qo;
  qo.workers = 4;
  qo.maxQueuedJobs = 64;
  qo.cache = &cache;
  qo.observer = &sink;
  JobQueue queue(qo);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 6;
  std::mutex seenMutex;
  std::set<JobId> seenIds;
  std::atomic<int> completed{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        JobRequest request;
        request.scenarios = tinyBatch(wf, 3 + ((t + j) % 3));
        const std::size_t expected = request.scenarios.size();
        const JobId id = queue.submit(std::move(request));
        {
          const std::lock_guard<std::mutex> lock(seenMutex);
          EXPECT_TRUE(seenIds.insert(id).second) << "duplicate id " << id;
        }
        const JobOutcome outcome = queue.wait(id);
        EXPECT_EQ(outcome.id, id);
        EXPECT_EQ(outcome.state, JobState::Completed);
        EXPECT_EQ(outcome.results.size(), expected);
        completed.fetch_add(1);
        // The outcome was surrendered exactly once; the id is now retired.
        EXPECT_THROW(queue.wait(id), std::invalid_argument);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completed.load(), kThreads * kJobsPerThread);
  EXPECT_EQ(seenIds.size(),
            static_cast<std::size_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(queue.liveJobs(), 0u);
}

TEST(JobQueueRace, ConcurrentWaitersOneWinner) {
  const dag::Workflow wf = tinyWorkflow();
  JobQueue queue({.workers = 2});

  for (int round = 0; round < 4; ++round) {
    JobRequest request;
    request.scenarios = tinyBatch(wf, 4);
    const JobId id = queue.submit(std::move(request));

    std::atomic<int> winners{0};
    std::atomic<int> losers{0};
    std::vector<std::thread> waiters;
    for (int t = 0; t < 4; ++t) {
      waiters.emplace_back([&] {
        try {
          const JobOutcome outcome = queue.wait(id);
          EXPECT_EQ(outcome.state, JobState::Completed);
          EXPECT_EQ(outcome.results.size(), 4u);
          winners.fetch_add(1);
        } catch (const std::invalid_argument&) {
          losers.fetch_add(1);
        }
      });
    }
    for (std::thread& t : waiters) t.join();
    EXPECT_EQ(winners.load(), 1);
    EXPECT_EQ(losers.load(), 3);
  }
}

TEST(JobQueueRace, CancelInFlightIsDeterministic) {
  const dag::Workflow wf = tinyWorkflow();
  JobQueue queue({.workers = 2, .maxQueuedJobs = 64});

  // Keep the pool saturated so later jobs are cancellable while queued or
  // freshly running; whatever state cancel() catches them in, the outcome
  // must be Completed-with-results or Cancelled-with-none — never between.
  constexpr int kJobs = 24;
  std::vector<JobId> ids;
  std::vector<std::size_t> sizes;
  for (int j = 0; j < kJobs; ++j) {
    JobRequest request;
    request.scenarios = tinyBatch(wf, 4);
    sizes.push_back(request.scenarios.size());
    ids.push_back(queue.submit(std::move(request)));
  }

  std::thread canceller([&] {
    for (int j = kJobs - 1; j >= 0; j -= 2) queue.cancel(ids[j]);
  });
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(kJobs);
  for (const JobId id : ids) outcomes.push_back(queue.wait(id));
  canceller.join();

  for (int j = 0; j < kJobs; ++j) {
    SCOPED_TRACE("job=" + std::to_string(j));
    if (outcomes[j].state == JobState::Completed) {
      EXPECT_EQ(outcomes[j].results.size(), sizes[j]);
      for (const ScenarioResult& r : outcomes[j].results)
        EXPECT_TRUE(r.result.completed());
    } else {
      EXPECT_EQ(outcomes[j].state, JobState::Cancelled);
      EXPECT_TRUE(outcomes[j].results.empty());
    }
  }
}

TEST(JobQueueRace, SubmitBackpressureUnderContention) {
  const dag::Workflow wf = tinyWorkflow();
  JobQueue queue({.workers = 1, .maxQueuedJobs = 2});

  constexpr int kThreads = 6;
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> threads;
  std::mutex idsMutex;
  std::vector<JobId> ids;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int j = 0; j < 4; ++j) {
        JobRequest request;
        request.scenarios = tinyBatch(wf, 2);
        if (const auto id = queue.trySubmit(std::move(request))) {
          accepted.fetch_add(1);
          const std::lock_guard<std::mutex> lock(idsMutex);
          ids.push_back(*id);
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(accepted.load() + refused.load(), kThreads * 4);
  EXPECT_GT(accepted.load(), 0);
  for (const JobId id : ids)
    EXPECT_EQ(queue.wait(id).state, JobState::Completed);
}

}  // namespace
}  // namespace mcsim::runner
