#include "mcsim/runner/runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/sink.hpp"

namespace mcsim::runner {
namespace {

dag::Workflow smallWorkflow() { return montage::buildMontageWorkflow(0.2); }

ScenarioSpec makeSpec(const dag::Workflow& wf, int processors,
                      engine::DataMode mode = engine::DataMode::Regular) {
  ScenarioSpec spec;
  spec.workflow = &wf;
  spec.config.processors = processors;
  spec.config.mode = mode;
  spec.label = "p=" + std::to_string(processors);
  return spec;
}

std::string serialize(const std::vector<obs::Event>& events) {
  std::ostringstream os;
  for (const obs::Event& e : events) {
    obs::writeEventJson(os, e);
    os << '\n';
  }
  return os.str();
}

TEST(DefaultJobs, AtLeastOne) { EXPECT_GE(defaultJobs(), 1); }

TEST(DeriveSeed, PureAndIndexSensitive) {
  EXPECT_EQ(deriveSeed(42, 0), deriveSeed(42, 0));
  EXPECT_NE(deriveSeed(42, 0), deriveSeed(42, 1));
  EXPECT_NE(deriveSeed(42, 0), deriveSeed(43, 0));
  // Never collapses to the degenerate all-zero seed for small inputs.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t s = deriveSeed(1, i);
    EXPECT_NE(s, 0u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Runner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(runScenarios({}).empty());
}

TEST(Runner, RejectsMalformedInput) {
  const dag::Workflow wf = smallWorkflow();

  RunnerOptions negative;
  negative.jobs = -1;
  EXPECT_THROW(runScenarios({makeSpec(wf, 2)}, negative),
               std::invalid_argument);

  ScenarioSpec noWorkflow;
  EXPECT_THROW(runScenarios({noWorkflow}), std::invalid_argument);

  obs::CollectingSink sink;
  ScenarioSpec withObserver = makeSpec(wf, 2);
  withObserver.config.observer = &sink;
  EXPECT_THROW(runScenarios({withObserver}), std::invalid_argument);
}

TEST(Runner, ResultsComeBackInSpecOrder) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs;
  for (int p : {1, 2, 4, 8, 16}) specs.push_back(makeSpec(wf, p));

  RunnerOptions options;
  options.jobs = 4;
  const auto results = runScenarios(specs, options);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, specs[i].label);
  }
  // More processors never slows the run down.
  EXPECT_GE(results[0].result.makespanSeconds,
            results[4].result.makespanSeconds);
}

TEST(Runner, ParallelResultsMatchSerial) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs;
  for (int p : {1, 2, 3, 4, 6, 8})
    for (engine::DataMode mode :
         {engine::DataMode::RemoteIO, engine::DataMode::Regular,
          engine::DataMode::DynamicCleanup})
      specs.push_back(makeSpec(wf, p, mode));

  RunnerOptions serial;
  serial.jobs = 0;
  RunnerOptions parallel;
  parallel.jobs = 8;
  const auto a = runScenarios(specs, serial);
  const auto b = runScenarios(specs, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.makespanSeconds, b[i].result.makespanSeconds) << i;
    EXPECT_EQ(a[i].result.bytesIn.value(), b[i].result.bytesIn.value()) << i;
    EXPECT_EQ(a[i].result.bytesOut.value(), b[i].result.bytesOut.value()) << i;
    EXPECT_EQ(a[i].result.storageByteSeconds, b[i].result.storageByteSeconds)
        << i;
  }
}

TEST(Runner, JobsBeyondBatchSizeClamped) {
  const dag::Workflow wf = smallWorkflow();
  RunnerOptions options;
  options.jobs = 64;  // far more workers than the two scenarios
  const auto results =
      runScenarios({makeSpec(wf, 1), makeSpec(wf, 2)}, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].result.makespanSeconds, 0.0);
}

TEST(Runner, BaseSeedOverridesScenarioSeeds) {
  const dag::Workflow wf = smallWorkflow();
  ScenarioSpec spec = makeSpec(wf, 4);
  spec.config.faults.processor.mtbfSeconds = 600.0;
  spec.config.faults.seed = 999;  // overwritten by baseSeed derivation

  RunnerOptions derived;
  derived.jobs = 2;
  derived.baseSeed = 42;
  const auto viaRunner = runScenarios({spec, spec}, derived);

  // Hand-derived twin: the runner must behave as if each spec carried
  // deriveSeed(baseSeed, index) itself.
  std::vector<ScenarioSpec> explicitSeeds = {spec, spec};
  explicitSeeds[0].config.faults.seed = deriveSeed(42, 0);
  explicitSeeds[1].config.faults.seed = deriveSeed(42, 1);
  const auto viaSpecs = runScenarios(explicitSeeds, RunnerOptions{.jobs = 0});

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(viaRunner[i].result.makespanSeconds,
              viaSpecs[i].result.makespanSeconds)
        << i;
    EXPECT_EQ(viaRunner[i].result.processorCrashes,
              viaSpecs[i].result.processorCrashes)
        << i;
  }
  // Distinct derived seeds: the two identical specs see different faults.
  EXPECT_NE(deriveSeed(42, 0), deriveSeed(42, 1));
}

TEST(Runner, LowestIndexErrorWinsAndCancelsBatch) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs;
  specs.push_back(makeSpec(wf, 2));
  specs.push_back(makeSpec(wf, 0));   // invalid processors -> invalid_argument
  specs.push_back(makeSpec(wf, 2));
  ScenarioSpec capped = makeSpec(wf, 2);
  capped.config.storageCapacityBytes = 1.0;  // aborts with runtime_error
  specs.push_back(capped);

  for (int jobs : {0, 8}) {
    RunnerOptions options;
    options.jobs = jobs;
    // Index 1 fails before index 3; its exception type must surface even
    // when workers race.
    EXPECT_THROW(runScenarios(specs, options), std::invalid_argument)
        << "jobs=" << jobs;
  }
}

TEST(Runner, ObserverSeesMergedStreamInScenarioOrder) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs;
  for (int p : {1, 2, 4, 8}) specs.push_back(makeSpec(wf, p));

  obs::CollectingSink serialSink;
  RunnerOptions serial;
  serial.jobs = 0;
  serial.observer = &serialSink;
  runScenarios(specs, serial);

  obs::CollectingSink parallelSink;
  RunnerOptions parallel;
  parallel.jobs = 4;
  parallel.observer = &parallelSink;
  runScenarios(specs, parallel);

  ASSERT_GT(serialSink.size(), 0u);
  EXPECT_EQ(serialize(serialSink.events()), serialize(parallelSink.events()));
}

TEST(Runner, KeepEventsRetainsPerScenarioStreams) {
  const dag::Workflow wf = smallWorkflow();
  RunnerOptions options;
  options.jobs = 2;
  options.keepEvents = true;
  const auto results =
      runScenarios({makeSpec(wf, 1), makeSpec(wf, 4)}, options);
  for (const ScenarioResult& r : results) EXPECT_FALSE(r.events.empty());

  // Without the flag the streams are dropped.
  options.keepEvents = false;
  for (const ScenarioResult& r :
       runScenarios({makeSpec(wf, 1)}, options))
    EXPECT_TRUE(r.events.empty());
}

}  // namespace
}  // namespace mcsim::runner
