#include "mcsim/runner/jobs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/memo.hpp"

namespace mcsim::runner {
namespace {

dag::Workflow smallWorkflow() { return montage::buildMontageWorkflow(0.2); }

ScenarioSpec makeSpec(const dag::Workflow& wf, int processors) {
  ScenarioSpec spec;
  spec.workflow = &wf;
  spec.config.processors = processors;
  spec.label = "p=" + std::to_string(processors);
  return spec;
}

std::vector<ScenarioSpec> ladder(const dag::Workflow& wf) {
  std::vector<ScenarioSpec> specs;
  for (int p : {1, 2, 4, 8}) specs.push_back(makeSpec(wf, p));
  return specs;
}

TEST(JobState, StableWireNames) {
  EXPECT_STREQ(jobStateName(JobState::Queued), "queued");
  EXPECT_STREQ(jobStateName(JobState::Running), "running");
  EXPECT_STREQ(jobStateName(JobState::Completed), "completed");
  EXPECT_STREQ(jobStateName(JobState::Failed), "failed");
  EXPECT_STREQ(jobStateName(JobState::Cancelled), "cancelled");
}

TEST(JobQueue, RejectsNegativeWorkers) {
  JobQueueOptions options;
  options.workers = -1;
  EXPECT_THROW(JobQueue{options}, std::invalid_argument);
  options.workers = 1;
  options.maxQueuedJobs = 0;
  EXPECT_THROW(JobQueue{options}, std::invalid_argument);
}

TEST(JobQueue, SubmitWaitLifecycle) {
  const dag::Workflow wf = smallWorkflow();
  JobQueueOptions qo;
  qo.workers = 2;
  JobQueue queue(qo);

  JobRequest request;
  request.scenarios = ladder(wf);
  request.label = "lifecycle";
  const JobId id = queue.submit(std::move(request));
  EXPECT_GE(id, 1u);

  const JobOutcome outcome = queue.wait(id);
  EXPECT_EQ(outcome.id, id);
  EXPECT_EQ(outcome.state, JobState::Completed);
  EXPECT_EQ(outcome.label, "lifecycle");
  ASSERT_EQ(outcome.results.size(), 4u);
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    EXPECT_EQ(outcome.results[i].index, static_cast<int>(i));
    EXPECT_TRUE(outcome.results[i].result.completed());
  }
  EXPECT_TRUE(outcome.error.empty());
  EXPECT_EQ(outcome.exception, nullptr);

  // The id is retired: a second wait and a status both throw.
  EXPECT_THROW(queue.wait(id), std::invalid_argument);
  EXPECT_THROW(queue.status(id), std::invalid_argument);
}

TEST(JobQueue, InlineModeExecutesInCaller) {
  const dag::Workflow wf = smallWorkflow();
  JobQueueOptions qo;
  qo.workers = 0;
  JobQueue queue(qo);

  JobRequest request;
  request.scenarios = ladder(wf);
  const JobId id = queue.submit(std::move(request));
  // Inline mode resolves before submit returns.
  const JobStatus status = queue.status(id);
  EXPECT_EQ(status.state, JobState::Completed);
  EXPECT_EQ(status.completedScenarios, 4u);
  EXPECT_EQ(queue.wait(id).results.size(), 4u);
}

TEST(JobQueue, StatusTracksProgress) {
  const dag::Workflow wf = smallWorkflow();
  JobQueue queue({.workers = 2});

  JobRequest request;
  request.scenarios = ladder(wf);
  request.label = "progress";
  const JobId id = queue.submit(std::move(request));
  const JobStatus status = queue.status(id);
  EXPECT_EQ(status.id, id);
  EXPECT_EQ(status.totalScenarios, 4u);
  EXPECT_EQ(status.label, "progress");
  queue.wait(id);
}

TEST(JobQueue, RunIsSubmitPlusWait) {
  const dag::Workflow wf = smallWorkflow();
  JobQueue queue({.workers = 2});
  const auto results = queue.run(ladder(wf));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results.back().result.completed());
}

TEST(JobQueue, ValidatesSpecsAtSubmit) {
  JobQueue queue({.workers = 1});
  JobRequest request;
  request.scenarios.emplace_back();  // no workflow
  EXPECT_THROW(queue.submit(std::move(request)), std::invalid_argument);

  const dag::Workflow wf = smallWorkflow();
  obs::CollectingSink sink;
  JobRequest withObserver;
  withObserver.scenarios = {makeSpec(wf, 2)};
  withObserver.scenarios[0].config.observer = &sink;
  EXPECT_THROW(queue.submit(std::move(withObserver)), std::invalid_argument);
}

TEST(JobQueue, FailureWinsAtLowestIndexAndRethrows) {
  const dag::Workflow wf = smallWorkflow();
  // processors < 1 fails inside the engine for that scenario only.
  std::vector<ScenarioSpec> specs = ladder(wf);
  specs[1].config.processors = 0;

  JobQueue queue({.workers = 4});
  JobRequest request;
  request.scenarios = specs;
  const JobId id = queue.submit(std::move(request));
  const JobOutcome outcome = queue.wait(id);
  EXPECT_EQ(outcome.state, JobState::Failed);
  EXPECT_TRUE(outcome.results.empty());
  EXPECT_FALSE(outcome.error.empty());
  ASSERT_NE(outcome.exception, nullptr);
  EXPECT_THROW(std::rethrow_exception(outcome.exception),
               std::invalid_argument);

  // run() surfaces the stored exception directly.
  EXPECT_THROW(queue.run(specs), std::invalid_argument);
}

TEST(JobQueue, CancelQueuedJobResolvesWithoutRunning) {
  const dag::Workflow wf = smallWorkflow();
  // One worker, deep queue: jobs behind the first stay Queued long enough
  // to cancel deterministically.
  JobQueue queue({.workers = 1, .maxQueuedJobs = 8});

  JobRequest first;
  first.scenarios = ladder(wf);
  const JobId running = queue.submit(std::move(first));

  JobRequest second;
  second.scenarios = ladder(wf);
  const JobId queued = queue.submit(std::move(second));

  EXPECT_TRUE(queue.cancel(queued));
  EXPECT_FALSE(queue.cancel(queued));  // already terminal
  const JobOutcome cancelled = queue.wait(queued);
  EXPECT_EQ(cancelled.state, JobState::Cancelled);
  EXPECT_TRUE(cancelled.results.empty());

  EXPECT_EQ(queue.wait(running).state, JobState::Completed);
  EXPECT_FALSE(queue.cancel(9999));  // unknown id
}

TEST(JobQueue, TrySubmitRefusesWhenFull) {
  const dag::Workflow wf = smallWorkflow();
  JobQueue queue({.workers = 1, .maxQueuedJobs = 1});

  JobRequest first;
  first.scenarios = ladder(wf);
  const JobId a = queue.submit(std::move(first));

  // The worker may or may not have activated `a` yet; fill the admission
  // queue until trySubmit refuses, proving the bound is enforced.
  std::vector<JobId> admitted{a};
  int refused = 0;
  for (int i = 0; i < 8; ++i) {
    JobRequest next;
    next.scenarios = {makeSpec(wf, 1)};
    if (const auto id = queue.trySubmit(std::move(next)))
      admitted.push_back(*id);
    else
      ++refused;
  }
  EXPECT_GT(refused, 0);
  for (const JobId id : admitted)
    EXPECT_NE(queue.wait(id).state, JobState::Failed);
}

TEST(JobQueue, LifecycleEventsReachQueueObserver) {
  const dag::Workflow wf = smallWorkflow();
  obs::CollectingSink events;
  obs::MutexSink guarded(events);
  JobQueueOptions qo;
  qo.workers = 2;
  qo.observer = &guarded;
  JobQueue queue(qo);

  JobRequest request;
  request.scenarios = ladder(wf);
  const JobId id = queue.submit(std::move(request));
  queue.wait(id);

  std::optional<obs::JobSubmitted> submitted;
  std::optional<obs::JobStarted> started;
  std::optional<obs::JobFinished> finished;
  for (const obs::Event& e : events.events()) {
    EXPECT_LT(e.time, 0.0);  // control plane, never simulated time
    if (const auto* p = std::get_if<obs::JobSubmitted>(&e.payload))
      submitted = *p;
    if (const auto* p = std::get_if<obs::JobStarted>(&e.payload)) started = *p;
    if (const auto* p = std::get_if<obs::JobFinished>(&e.payload))
      finished = *p;
  }
  ASSERT_TRUE(submitted.has_value());
  EXPECT_EQ(submitted->job, id);
  EXPECT_EQ(submitted->scenarios, 4u);
  ASSERT_TRUE(started.has_value());
  EXPECT_EQ(started->job, id);
  ASSERT_TRUE(finished.has_value());
  EXPECT_EQ(finished->job, id);
  EXPECT_EQ(finished->outcome,
            static_cast<std::uint8_t>(JobState::Completed));
  EXPECT_EQ(finished->scenarios, 4u);
}

TEST(JobQueue, SharedCacheServesRepeatSubmissions) {
  const dag::Workflow wf = smallWorkflow();
  ScenarioMemoCache cache;
  JobQueueOptions qo;
  qo.workers = 2;
  qo.cache = &cache;
  JobQueue queue(qo);

  JobRequest first;
  first.scenarios = ladder(wf);
  const JobOutcome cold = queue.wait(queue.submit(std::move(first)));
  EXPECT_EQ(cold.cachedScenarios, 0u);

  JobRequest repeat;
  repeat.scenarios = ladder(wf);
  const JobOutcome warm = queue.wait(queue.submit(std::move(repeat)));
  EXPECT_EQ(warm.cachedScenarios, 4u);
  ASSERT_EQ(warm.results.size(), cold.results.size());
  for (std::size_t i = 0; i < warm.results.size(); ++i) {
    EXPECT_TRUE(warm.results[i].fromCache);
    EXPECT_EQ(warm.results[i].result.makespanSeconds,
              cold.results[i].result.makespanSeconds);
  }
}

TEST(JobQueue, DestructorCancelsQueuedJobs) {
  const dag::Workflow wf = smallWorkflow();
  obs::CollectingSink events;
  obs::MutexSink guarded(events);
  {
    JobQueueOptions qo;
    qo.workers = 1;
    qo.maxQueuedJobs = 4;
    qo.observer = &guarded;
    JobQueue queue(qo);
    for (int i = 0; i < 3; ++i) {
      JobRequest request;
      request.scenarios = ladder(wf);
      queue.submit(std::move(request));
    }
    // Drop the queue with work still queued: the destructor must resolve
    // everything (no hang) and emit a JobFinished per job.
  }
  std::size_t finished = 0;
  for (const obs::Event& e : events.events())
    if (std::holds_alternative<obs::JobFinished>(e.payload)) ++finished;
  EXPECT_EQ(finished, 3u);
}

}  // namespace
}  // namespace mcsim::runner
