// The tentpole compatibility contract: Runner::run / runScenarios now
// delegate to a transient JobQueue, and a persistent JobQueue must produce
// byte-identical results and merged telemetry to the legacy batch path —
// for any worker count, with and without cache, seeds and profile.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/jsonl.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/runner/jobs.hpp"
#include "mcsim/runner/memo.hpp"
#include "mcsim/runner/runner.hpp"

namespace mcsim::runner {
namespace {

dag::Workflow smallWorkflow() { return montage::buildMontageWorkflow(0.2); }

std::vector<ScenarioSpec> mixedBatch(const dag::Workflow& wf) {
  std::vector<ScenarioSpec> specs;
  for (int p : {1, 2, 4, 8}) {
    for (engine::DataMode mode :
         {engine::DataMode::Regular, engine::DataMode::DynamicCleanup}) {
      ScenarioSpec spec;
      spec.workflow = &wf;
      spec.config.processors = p;
      spec.config.mode = mode;
      spec.label = "compat/p=" + std::to_string(p);
      specs.push_back(spec);
    }
  }
  return specs;
}

std::string serialize(const std::vector<obs::Event>& events) {
  std::ostringstream os;
  for (const obs::Event& e : events) {
    obs::writeEventJson(os, e);
    os << '\n';
  }
  return os.str();
}

/// Execution results must match field-for-field, not just approximately.
void expectIdentical(const std::vector<ScenarioResult>& a,
                     const std::vector<ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].result.makespanSeconds, b[i].result.makespanSeconds);
    EXPECT_EQ(a[i].result.cpuBusySeconds, b[i].result.cpuBusySeconds);
    EXPECT_EQ(a[i].result.bytesIn.value(), b[i].result.bytesIn.value());
    EXPECT_EQ(a[i].result.bytesOut.value(), b[i].result.bytesOut.value());
    EXPECT_EQ(a[i].result.storageByteSeconds, b[i].result.storageByteSeconds);
    EXPECT_EQ(a[i].result.tasksExecuted, b[i].result.tasksExecuted);
    EXPECT_EQ(a[i].result.taskRetries, b[i].result.taskRetries);
  }
}

TEST(JobsCompat, BatchWrapperMatchesJobQueueAcrossWorkerCounts) {
  const dag::Workflow wf = smallWorkflow();
  const std::vector<ScenarioSpec> specs = mixedBatch(wf);

  obs::CollectingSink legacyEvents;
  RunnerOptions legacy;
  legacy.jobs = 0;  // exact serial legacy code path
  legacy.observer = &legacyEvents;
  const auto reference = runScenarios(specs, legacy);
  const std::string referenceStream = serialize(legacyEvents.events());

  for (int workers : {0, 1, 2, 4, 8}) {
    JobQueueOptions qo;
    qo.workers = workers;
    JobQueue queue(qo);

    obs::CollectingSink events;
    JobOptions jobOptions;
    jobOptions.observer = &events;
    const auto results = queue.run(specs, jobOptions);

    SCOPED_TRACE("workers=" + std::to_string(workers));
    expectIdentical(reference, results);
    EXPECT_EQ(referenceStream, serialize(events.events()));
  }
}

TEST(JobsCompat, BaseSeedDerivationMatches) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs = mixedBatch(wf);
  for (ScenarioSpec& spec : specs)
    spec.config.faults.processor.mtbfSeconds = 4000.0;

  RunnerOptions legacy;
  legacy.jobs = 0;
  legacy.baseSeed = 0xfeedface;
  const auto reference = runScenarios(specs, legacy);

  JobQueue queue({.workers = 4});
  JobOptions jobOptions;
  jobOptions.baseSeed = 0xfeedface;
  expectIdentical(reference, queue.run(specs, jobOptions));
}

TEST(JobsCompat, ConcurrentJobsDoNotPerturbEachOther) {
  const dag::Workflow wf = smallWorkflow();
  const std::vector<ScenarioSpec> specs = mixedBatch(wf);

  obs::CollectingSink referenceEvents;
  RunnerOptions legacy;
  legacy.jobs = 0;
  legacy.observer = &referenceEvents;
  const auto reference = runScenarios(specs, legacy);
  const std::string referenceStream = serialize(referenceEvents.events());

  // Submit the same batch many times to one pool; every job must come back
  // byte-identical to the serial reference even while its neighbours run.
  JobQueue queue({.workers = 4});
  constexpr int kJobs = 6;
  std::vector<obs::CollectingSink> streams(kJobs);
  std::vector<JobId> ids;
  for (int j = 0; j < kJobs; ++j) {
    JobRequest request;
    request.scenarios = specs;
    request.options.observer = &streams[j];
    ids.push_back(queue.submit(std::move(request)));
  }
  for (int j = 0; j < kJobs; ++j) {
    const JobOutcome outcome = queue.wait(ids[j]);
    SCOPED_TRACE("job=" + std::to_string(j));
    EXPECT_EQ(outcome.state, JobState::Completed);
    expectIdentical(reference, outcome.results);
    EXPECT_EQ(referenceStream, serialize(streams[j].events()));
  }
}

TEST(JobsCompat, CacheStatsStreamMatchesLegacy) {
  const dag::Workflow wf = smallWorkflow();
  const std::vector<ScenarioSpec> specs = mixedBatch(wf);

  ScenarioMemoCache legacyCache;
  obs::CollectingSink legacyEvents;
  RunnerOptions legacy;
  legacy.jobs = 0;
  legacy.cache = &legacyCache;
  legacy.observer = &legacyEvents;
  runScenarios(specs, legacy);
  runScenarios(specs, legacy);  // warm pass emits hit-heavy stats

  ScenarioMemoCache cache;
  JobQueueOptions qo;
  qo.workers = 3;
  qo.cache = &cache;
  JobQueue queue(qo);
  obs::CollectingSink events;
  JobOptions jobOptions;
  jobOptions.observer = &events;
  queue.run(specs, jobOptions);
  queue.run(specs, jobOptions);

  EXPECT_EQ(serialize(legacyEvents.events()), serialize(events.events()));
}

// Acceptance: a 128-scenario repeated-submit ladder against a bounded
// server cache must stay within the capacity bound while reporting a >50%
// hit rate — the long-lived daemon's steady state.
TEST(JobsCompat, BoundedCacheLadderHoldsCapacityWithMajorityHits) {
  const dag::Workflow wf = smallWorkflow();
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 32; ++i) {
    ScenarioSpec spec;
    spec.workflow = &wf;
    spec.config.processors = 1 + (i % 8);
    spec.label = "ladder/" + std::to_string(i % 8);
    specs.push_back(spec);
  }

  constexpr std::size_t kMaxEntries = 16;
  ScenarioMemoCache cache(MemoCacheOptions{kMaxEntries, 0});
  JobQueueOptions qo;
  qo.workers = 4;
  qo.cache = &cache;
  JobQueue queue(qo);

  std::size_t total = 0;
  std::size_t cached = 0;
  for (int round = 0; round < 4; ++round) {  // 4 x 32 = 128 scenarios
    JobRequest request;
    request.scenarios = specs;
    const JobOutcome outcome = queue.wait(queue.submit(std::move(request)));
    ASSERT_EQ(outcome.state, JobState::Completed);
    total += outcome.results.size();
    cached += outcome.cachedScenarios;
    EXPECT_LE(cache.stats().entries, kMaxEntries);
  }
  EXPECT_EQ(total, 128u);
  // 8 distinct scenarios, 128 submitted: everything after the first fills
  // is a duplicate or a warm lookup.
  EXPECT_GT(static_cast<double>(cached) / static_cast<double>(total), 0.5);
  EXPECT_GT(cache.stats().hitRate(), 0.5);
}

}  // namespace
}  // namespace mcsim::runner
