#include "mcsim/montage/ccr.hpp"

#include <gtest/gtest.h>

#include "mcsim/montage/factory.hpp"

namespace mcsim::montage {
namespace {

TEST(CcrRescale, HitsTargetExactly) {
  dag::Workflow wf = buildMontageWorkflow(1.0);
  for (double target : {0.01, 0.053, 0.1, 0.5, 1.0, 2.0, 10.0}) {
    rescaleToCcr(wf, target, kReferenceBandwidthBytesPerSec);
    EXPECT_NEAR(wf.ccr(kReferenceBandwidthBytesPerSec), target, 1e-9);
  }
}

TEST(CcrRescale, FactorIsRatioOfCcrs) {
  dag::Workflow wf = buildMontageWorkflow(1.0);
  const double before = wf.ccr(kReferenceBandwidthBytesPerSec);
  const double factor = rescaleToCcr(wf, 2.0 * before,
                                     kReferenceBandwidthBytesPerSec);
  EXPECT_NEAR(factor, 2.0, 1e-9);
}

TEST(CcrRescale, ScalesEveryFileUniformly) {
  dag::Workflow wf = buildMontageWorkflow(1.0);
  const Bytes firstBefore = wf.file(0).size;
  const Bytes lastBefore = wf.file(static_cast<dag::FileId>(wf.fileCount() - 1)).size;
  const double factor = rescaleToCcr(wf, 0.106, kReferenceBandwidthBytesPerSec);
  EXPECT_NEAR(wf.file(0).size.value(), firstBefore.value() * factor, 1e-3);
  EXPECT_NEAR(wf.file(static_cast<dag::FileId>(wf.fileCount() - 1)).size.value(),
              lastBefore.value() * factor, 1e-3);
}

TEST(CcrRescale, RuntimesUntouched) {
  dag::Workflow wf = buildMontageWorkflow(1.0);
  const double runtime = wf.totalRuntimeSeconds();
  rescaleToCcr(wf, 1.0, kReferenceBandwidthBytesPerSec);
  EXPECT_DOUBLE_EQ(wf.totalRuntimeSeconds(), runtime);
}

TEST(CcrRescale, NonMutatingCopy) {
  const dag::Workflow base = buildMontageWorkflow(1.0);
  const double original = base.ccr(kReferenceBandwidthBytesPerSec);
  const dag::Workflow scaled = withCcr(base, 0.4, kReferenceBandwidthBytesPerSec);
  EXPECT_NEAR(base.ccr(kReferenceBandwidthBytesPerSec), original, 1e-12);
  EXPECT_NEAR(scaled.ccr(kReferenceBandwidthBytesPerSec), 0.4, 1e-9);
}

TEST(CcrRescale, InvalidTargetRejected) {
  dag::Workflow wf = buildMontageWorkflow(1.0);
  EXPECT_THROW(rescaleToCcr(wf, 0.0, kReferenceBandwidthBytesPerSec),
               std::invalid_argument);
  EXPECT_THROW(rescaleToCcr(wf, -1.0, kReferenceBandwidthBytesPerSec),
               std::invalid_argument);
}

TEST(CcrRescale, PaperCcrTable) {
  // The table in §6: CCR of the three Montage workflows at 10 Mbps.
  EXPECT_NEAR(buildMontageWorkflow(1.0).ccr(kReferenceBandwidthBytesPerSec),
              0.053, 1e-9);
  EXPECT_NEAR(buildMontageWorkflow(2.0).ccr(kReferenceBandwidthBytesPerSec),
              0.053, 1e-9);
  EXPECT_NEAR(buildMontageWorkflow(4.0).ccr(kReferenceBandwidthBytesPerSec),
              0.045, 1e-9);
}

}  // namespace
}  // namespace mcsim::montage
