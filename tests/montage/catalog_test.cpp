#include "mcsim/montage/catalog.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcsim::montage {
namespace {

TEST(Catalog, NameRoundTrip) {
  for (TaskType t : kAllTaskTypes) EXPECT_EQ(typeFromName(typeName(t)), t);
}

TEST(Catalog, UnknownNameRejected) {
  EXPECT_THROW(typeFromName("mBogus"), std::invalid_argument);
}

TEST(Catalog, LevelsFollowMontagePipeline) {
  EXPECT_EQ(levelOf(TaskType::mProject), 1);
  EXPECT_EQ(levelOf(TaskType::mDiffFit), 2);
  EXPECT_EQ(levelOf(TaskType::mConcatFit), 3);
  EXPECT_EQ(levelOf(TaskType::mBgModel), 4);
  EXPECT_EQ(levelOf(TaskType::mBackground), 5);
  EXPECT_EQ(levelOf(TaskType::mImgtbl), 6);
  EXPECT_EQ(levelOf(TaskType::mAdd), 7);
  EXPECT_EQ(levelOf(TaskType::mShrink), 8);
  EXPECT_EQ(levelOf(TaskType::mJPEG), 9);
}

TEST(Catalog, RuntimesPositiveAndProjectDominant) {
  for (TaskType t : kAllTaskTypes) EXPECT_GT(baseRuntimeSeconds(t), 0.0);
  // The reprojection stage dominates CPU time in 2008-era Montage; our
  // calibration relies on that (DESIGN.md).
  for (TaskType t : kAllTaskTypes)
    EXPECT_GE(baseRuntimeSeconds(TaskType::mProject), baseRuntimeSeconds(t));
  // Diff fits are short relative to reprojection.
  EXPECT_LT(baseRuntimeSeconds(TaskType::mDiffFit),
            baseRuntimeSeconds(TaskType::mProject) / 10.0);
}

TEST(Catalog, TypeNamesMatchMontageRoutines) {
  EXPECT_EQ(typeName(TaskType::mProject), "mProject");
  EXPECT_EQ(typeName(TaskType::mJPEG), "mJPEG");
}

}  // namespace
}  // namespace mcsim::montage
