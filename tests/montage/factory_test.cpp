#include "mcsim/montage/factory.hpp"

#include <gtest/gtest.h>

#include <map>

#include "mcsim/dag/algorithms.hpp"

namespace mcsim::montage {
namespace {

class MontagePreset
    : public ::testing::TestWithParam<std::tuple<double, int, double, double>> {
};

// (degrees, paper task count, paper CPU hours, paper CCR)
INSTANTIATE_TEST_SUITE_P(
    PaperWorkflows, MontagePreset,
    ::testing::Values(std::make_tuple(1.0, 203, 5.6, 0.053),
                      std::make_tuple(2.0, 731, 20.3, 0.053),
                      std::make_tuple(4.0, 3027, 84.0, 0.045)));

TEST_P(MontagePreset, TaskCountMatchesPaper) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const dag::Workflow wf = buildMontageWorkflow(deg);
  EXPECT_EQ(static_cast<int>(wf.taskCount()), tasks);
}

TEST_P(MontagePreset, CpuHoursCalibrated) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const dag::Workflow wf = buildMontageWorkflow(deg);
  EXPECT_NEAR(wf.totalRuntimeSeconds() / kSecondsPerHour, cpuHours, 1e-9);
}

TEST_P(MontagePreset, CcrCalibrated) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const dag::Workflow wf = buildMontageWorkflow(deg);
  EXPECT_NEAR(wf.ccr(kReferenceBandwidthBytesPerSec), ccr, 1e-9);
}

TEST_P(MontagePreset, NineMontageLevels) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const dag::Workflow wf = buildMontageWorkflow(deg);
  EXPECT_EQ(wf.levelCount(), 9);
  // Level homogeneity (paper §2: "all the tasks at a particular level are
  // invocations of the same routine").
  std::map<int, std::string> routineAtLevel;
  for (const dag::Task& t : wf.tasks()) {
    auto [it, inserted] = routineAtLevel.emplace(t.level, t.type);
    EXPECT_EQ(it->second, t.type)
        << "level " << t.level << " mixes " << it->second << " and " << t.type;
  }
}

TEST_P(MontagePreset, MosaicSizeFixed) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const MontageParams p = paramsForDegrees(deg);
  const dag::Workflow wf = buildMontageWorkflow(p);
  bool found = false;
  for (const dag::File& f : wf.files()) {
    if (f.name == "mosaic.fits") {
      found = true;
      EXPECT_DOUBLE_EQ(f.size.value(), p.mosaicBytes.value());
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(MontagePreset, MosaicIsWorkflowOutput) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const dag::Workflow wf = buildMontageWorkflow(deg);
  bool mosaicOut = false, jpegOut = false;
  for (dag::FileId f : wf.workflowOutputs()) {
    if (wf.file(f).name == "mosaic.fits") mosaicOut = true;
    if (wf.file(f).name == "mosaic.jpg") jpegOut = true;
  }
  EXPECT_TRUE(mosaicOut);  // explicit output despite mShrink consuming it
  EXPECT_TRUE(jpegOut);
}

TEST_P(MontagePreset, ExternalInputsAreArchiveImagesPlusHeader) {
  const auto [deg, tasks, cpuHours, ccr] = GetParam();
  const MontageParams p = paramsForDegrees(deg);
  const dag::Workflow wf = buildMontageWorkflow(p);
  EXPECT_EQ(wf.externalInputs().size(),
            static_cast<std::size_t>(p.imageCount()) + 1);  // + region.hdr
}

TEST(MontageFactory, PresetsHavePaperTaskBreakdown) {
  // 1 degree: 45 mProject + 107 mDiffFit + 45 mBackground + 6 singletons.
  const dag::Workflow wf = buildMontageWorkflow(1.0);
  std::map<std::string, int> byType;
  for (const dag::Task& t : wf.tasks()) byType[t.type]++;
  EXPECT_EQ(byType["mProject"], 45);
  EXPECT_EQ(byType["mDiffFit"], 107);
  EXPECT_EQ(byType["mBackground"], 45);
  EXPECT_EQ(byType["mConcatFit"], 1);
  EXPECT_EQ(byType["mBgModel"], 1);
  EXPECT_EQ(byType["mImgtbl"], 1);
  EXPECT_EQ(byType["mAdd"], 1);
  EXPECT_EQ(byType["mShrink"], 1);
  EXPECT_EQ(byType["mJPEG"], 1);
}

TEST(MontageFactory, Deterministic) {
  const dag::Workflow a = buildMontageWorkflow(2.0);
  const dag::Workflow b = buildMontageWorkflow(2.0);
  ASSERT_EQ(a.taskCount(), b.taskCount());
  EXPECT_DOUBLE_EQ(a.totalFileBytes().value(), b.totalFileBytes().value());
  for (dag::TaskId t = 0; t < a.taskCount(); ++t)
    EXPECT_EQ(a.task(t).parents, b.task(t).parents);
}

TEST(MontageFactory, GenericDegreesInterpolate) {
  const dag::Workflow wf = buildMontageWorkflow(6.0);
  // ~44 images per square degree -> ~1,575 images, >3,000 tasks.
  EXPECT_GT(wf.taskCount(), 3000u);
  EXPECT_NEAR(wf.ccr(kReferenceBandwidthBytesPerSec), 0.045, 1e-9);
  // Mosaic should scale with area: 36 x 173.46 MB ~ 6.24 GB.
  Bytes mosaic;
  for (const dag::File& f : wf.files())
    if (f.name == "mosaic.fits") mosaic = f.size;
  EXPECT_NEAR(mosaic.gb(), 36 * 0.17346, 0.01);
}

TEST(MontageFactory, CriticalPathMuchShorterThanTotal) {
  // The workflow must parallelize well: the paper's 1-degree run drops from
  // 5.5 h serial to 18 min on 128 processors (~18x).  Require the critical
  // path to allow at least a 10x speedup.
  const dag::Workflow wf = buildMontageWorkflow(1.0);
  EXPECT_LT(dag::criticalPathSeconds(wf), wf.totalRuntimeSeconds() / 10.0);
}

TEST(MontageFactory, MaxParallelismCoversWideLevels) {
  const dag::Workflow wf = buildMontageWorkflow(1.0);
  // The mDiffFit level (107 tasks) is the widest.
  EXPECT_EQ(dag::maxLevelWidth(wf), 107u);
  EXPECT_GE(dag::maxParallelism(wf), 45u);
}

TEST(MontageFactory, InvalidParamsRejected) {
  MontageParams p = montage1DegreeParams();
  p.gridCols = 1;
  EXPECT_THROW(buildMontageWorkflow(p), std::invalid_argument);

  p = montage1DegreeParams();
  p.diffCount = 100000;  // more than the grid's adjacency supply
  EXPECT_THROW(buildMontageWorkflow(p), std::invalid_argument);

  p = montage1DegreeParams();
  p.targetCcr = 1e-9;  // cannot go below the fixed files
  EXPECT_THROW(buildMontageWorkflow(p), std::invalid_argument);

  p = montage1DegreeParams();
  p.targetCpuSeconds = -1.0;
  EXPECT_THROW(buildMontageWorkflow(p), std::invalid_argument);

  EXPECT_THROW(paramsForDegrees(0.0), std::invalid_argument);
  EXPECT_THROW(paramsForDegrees(-2.0), std::invalid_argument);
}

TEST(MontageFactory, ReferenceBandwidthIsTenMegabits) {
  EXPECT_DOUBLE_EQ(kReferenceBandwidthBytesPerSec, 1.25e6);
}

}  // namespace
}  // namespace mcsim::montage
