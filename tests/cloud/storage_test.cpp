#include "mcsim/cloud/storage.hpp"

#include <gtest/gtest.h>

namespace mcsim::cloud {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
};

TEST_F(StorageTest, PutEraseLifecycle) {
  StorageService s(sim);
  s.put(1, Bytes::fromMB(4.0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.sizeOf(1).mb(), 4.0);
  EXPECT_DOUBLE_EQ(s.residentBytes().mb(), 4.0);
  EXPECT_EQ(s.objectCount(), 1u);
  s.erase(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_DOUBLE_EQ(s.residentBytes().value(), 0.0);
  EXPECT_EQ(s.objectCount(), 0u);
}

TEST_F(StorageTest, GbHoursIntegralFollowsSimClock) {
  StorageService s(sim);
  sim.schedule(0.0, [&] { s.put(1, Bytes::fromGB(2.0)); });
  sim.schedule(3.0 * kSecondsPerHour, [&] { s.erase(1); });
  sim.run();
  EXPECT_NEAR(s.gbHoursUsed(), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.peakBytes().gb(), 2.0);
}

TEST_F(StorageTest, IntegralCountsOnlyUpToNow) {
  StorageService s(sim);
  sim.schedule(0.0, [&] { s.put(1, Bytes(100.0)); });
  sim.schedule(10.0, [&] {
    EXPECT_NEAR(s.byteSecondsUsed(), 1000.0, 1e-9);
  });
  sim.schedule(20.0, [&] { s.erase(1); });
  sim.run();
  EXPECT_NEAR(s.byteSecondsUsed(), 2000.0, 1e-9);
}

TEST_F(StorageTest, PeakTracksOverlap) {
  StorageService s(sim);
  sim.schedule(0.0, [&] { s.put(1, Bytes(10.0)); });
  sim.schedule(1.0, [&] { s.put(2, Bytes(30.0)); });
  sim.schedule(2.0, [&] { s.erase(1); });
  sim.schedule(3.0, [&] { s.erase(2); });
  sim.run();
  EXPECT_DOUBLE_EQ(s.peakBytes().value(), 40.0);
}

TEST_F(StorageTest, DuplicateKeyRejected) {
  StorageService s(sim);
  s.put(7, Bytes(1.0));
  EXPECT_THROW(s.put(7, Bytes(2.0)), std::logic_error);
}

TEST_F(StorageTest, UnknownKeyRejected) {
  StorageService s(sim);
  EXPECT_THROW(s.erase(9), std::logic_error);
  EXPECT_THROW(s.sizeOf(9), std::logic_error);
}

TEST_F(StorageTest, NegativeSizeRejected) {
  StorageService s(sim);
  EXPECT_THROW(s.put(1, Bytes(-1.0)), std::invalid_argument);
}

TEST_F(StorageTest, CapacityEnforced) {
  StorageService s(sim, StorageConfig{.capacityBytes = Bytes::fromMB(10.0).value()});
  s.put(1, Bytes::fromMB(8.0));
  EXPECT_THROW(s.put(2, Bytes::fromMB(5.0)), std::runtime_error);
  // The failed put must not leak partial state.
  EXPECT_FALSE(s.contains(2));
  EXPECT_DOUBLE_EQ(s.residentBytes().mb(), 8.0);
  s.erase(1);
  s.put(2, Bytes::fromMB(5.0));  // fits now
  EXPECT_TRUE(s.contains(2));
}

TEST_F(StorageTest, InvalidCapacityRejected) {
  EXPECT_THROW(StorageService(sim, StorageConfig{.capacityBytes = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(StorageService(sim, StorageConfig{.capacityBytes = -1.0}),
               std::invalid_argument);
}

TEST_F(StorageTest, InfiniteCapacityByDefault) {
  StorageService s(sim);
  s.put(1, Bytes::fromTB(10000.0));  // paper: "infinite capacity"
  EXPECT_TRUE(s.contains(1));
}

}  // namespace
}  // namespace mcsim::cloud
