#include "mcsim/cloud/pricing.hpp"

#include <gtest/gtest.h>

namespace mcsim::cloud {
namespace {

TEST(Pricing, Amazon2008FeeTable) {
  const Pricing p = Pricing::amazon2008();
  EXPECT_EQ(p.providerName, "amazon-2008");
  EXPECT_DOUBLE_EQ(p.storagePerGBMonth.value(), 0.15);
  EXPECT_DOUBLE_EQ(p.transferInPerGB.value(), 0.10);
  EXPECT_DOUBLE_EQ(p.transferOutPerGB.value(), 0.16);
  EXPECT_DOUBLE_EQ(p.cpuPerHour.value(), 0.10);
}

TEST(Pricing, PerSecondNormalization) {
  const Pricing p = Pricing::amazon2008();
  // $0.1 per CPU-hour = $1/36000 per CPU-second.
  EXPECT_NEAR(p.cpuDollarsPerSecond(), 0.10 / 3600.0, 1e-15);
  // $0.15 per GB-month over 30-day months.
  EXPECT_NEAR(p.storageDollarsPerByteSecond(), 0.15 / 1e9 / 2592000.0, 1e-25);
  EXPECT_NEAR(p.transferInDollarsPerByte(), 0.10 / 1e9, 1e-15);
  EXPECT_NEAR(p.transferOutDollarsPerByte(), 0.16 / 1e9, 1e-15);
}

TEST(Pricing, CpuCostOneHour) {
  const Pricing p = Pricing::amazon2008();
  EXPECT_NEAR(p.cpuCost(3600.0).value(), 0.10, 1e-12);
  // 1 degree Montage: 5.6 CPU-hours -> $0.56 (paper Fig 10).
  EXPECT_NEAR(p.cpuCost(5.6 * 3600.0).value(), 0.56, 1e-12);
}

TEST(Pricing, StorageCostGBMonth) {
  const Pricing p = Pricing::amazon2008();
  // 12 TB for one month = 12,000 GB x $0.15 = $1,800 (paper Q2b).
  const Money cost = p.storageCost(Bytes::fromTB(12.0), kSecondsPerMonth);
  EXPECT_NEAR(cost.value(), 1800.0, 1e-9);
}

TEST(Pricing, TransferCosts) {
  const Pricing p = Pricing::amazon2008();
  // Uploading the 12 TB archive: $1,200 at $0.1/GB (paper Q2b).
  EXPECT_NEAR(p.transferInCost(Bytes::fromTB(12.0)).value(), 1200.0, 1e-9);
  EXPECT_NEAR(p.transferOutCost(Bytes::fromGB(1.0)).value(), 0.16, 1e-12);
}

TEST(Pricing, ByteSecondsOverloadConsistent) {
  const Pricing p = Pricing::amazon2008();
  const Bytes amount = Bytes::fromGB(3.0);
  const double duration = 12345.0;
  EXPECT_DOUBLE_EQ(p.storageCost(amount, duration).value(),
                   p.storageCost(amount.value() * duration).value());
}

TEST(Pricing, StorageHeavyProviderInvertsTradeOff) {
  const Pricing cheap = Pricing::amazon2008();
  const Pricing heavy = Pricing::storageHeavyProvider();
  EXPECT_GT(heavy.storageDollarsPerByteSecond(),
            cheap.storageDollarsPerByteSecond());
  EXPECT_LT(heavy.transferInDollarsPerByte(),
            cheap.transferInDollarsPerByte());
  EXPECT_LT(heavy.transferOutDollarsPerByte(),
            cheap.transferOutDollarsPerByte());
}

TEST(Pricing, ComputeDiscountProviderCheapCpu) {
  EXPECT_LT(Pricing::computeDiscountProvider().cpuDollarsPerSecond(),
            Pricing::amazon2008().cpuDollarsPerSecond());
}

TEST(Pricing, ZeroRatesGiveZeroCosts) {
  const Pricing p;  // all zero
  EXPECT_DOUBLE_EQ(p.cpuCost(1e6).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.storageCost(1e18).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.transferInCost(Bytes::fromTB(1.0)).value(), 0.0);
}

}  // namespace
}  // namespace mcsim::cloud
