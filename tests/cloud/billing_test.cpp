#include "mcsim/cloud/billing.hpp"

#include <gtest/gtest.h>

namespace mcsim::cloud {
namespace {

TEST(Billing, PerSecondIsIdentity) {
  EXPECT_DOUBLE_EQ(billedSeconds(0.0, BillingGranularity::PerSecond), 0.0);
  EXPECT_DOUBLE_EQ(billedSeconds(1234.5, BillingGranularity::PerSecond),
                   1234.5);
}

TEST(Billing, PerHourRoundsUp) {
  EXPECT_DOUBLE_EQ(billedSeconds(0.0, BillingGranularity::PerHour), 0.0);
  EXPECT_DOUBLE_EQ(billedSeconds(1.0, BillingGranularity::PerHour), 3600.0);
  EXPECT_DOUBLE_EQ(billedSeconds(3600.0, BillingGranularity::PerHour), 3600.0);
  EXPECT_DOUBLE_EQ(billedSeconds(3601.0, BillingGranularity::PerHour), 7200.0);
  // 18 minutes bills as a full hour -- the granularity the paper idealizes
  // away.
  EXPECT_DOUBLE_EQ(billedSeconds(18.0 * 60.0, BillingGranularity::PerHour),
                   3600.0);
}

TEST(Billing, NegativeDurationRejected) {
  EXPECT_THROW(billedSeconds(-1.0, BillingGranularity::PerSecond),
               std::invalid_argument);
}

TEST(CostBreakdown, Composition) {
  CostBreakdown c;
  c.cpu = Money(1.0);
  c.storage = Money(0.10);
  c.storageCleanup = Money(0.06);
  c.transferIn = Money(0.20);
  c.transferOut = Money(0.30);
  EXPECT_DOUBLE_EQ(c.transfer().value(), 0.50);
  EXPECT_DOUBLE_EQ(c.dataManagement().value(), 0.60);
  // The paper plots totals with the no-cleanup storage figure.
  EXPECT_DOUBLE_EQ(c.total().value(), 1.60);
  EXPECT_DOUBLE_EQ(c.totalWithCleanup().value(), 1.56);
}

TEST(CostBreakdown, DefaultsToZero) {
  const CostBreakdown c;
  EXPECT_DOUBLE_EQ(c.total().value(), 0.0);
  EXPECT_DOUBLE_EQ(c.dataManagement().value(), 0.0);
}

}  // namespace
}  // namespace mcsim::cloud
