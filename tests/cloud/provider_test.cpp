#include "mcsim/cloud/provider.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mcsim/util/json.hpp"

// Set by CMake to ${CMAKE_SOURCE_DIR}/config/providers — the committed
// profile files these tests validate against the builtin catalog.
#ifndef MCSIM_PROVIDERS_DIR
#error "MCSIM_PROVIDERS_DIR must be defined by the build"
#endif

namespace mcsim::cloud {
namespace {

void expectSameSchedule(const ProviderProfile& a, const ProviderProfile& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.displayName, b.displayName);
  EXPECT_EQ(a.year, b.year);
  ASSERT_EQ(a.instanceTypes.size(), b.instanceTypes.size());
  for (std::size_t i = 0; i < a.instanceTypes.size(); ++i) {
    const InstanceType& x = a.instanceTypes[i];
    const InstanceType& y = b.instanceTypes[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_NEAR(x.speedFactor, y.speedFactor, 1e-12);
    EXPECT_NEAR(x.hourlyRate.value(), y.hourlyRate.value(), 1e-12);
    EXPECT_EQ(x.granularity, y.granularity);
    EXPECT_NEAR(x.spotDiscount, y.spotDiscount, 1e-12);
    EXPECT_NEAR(x.interruptionsPerHour, y.interruptionsPerHour, 1e-12);
  }
  ASSERT_EQ(a.storageClasses.size(), b.storageClasses.size());
  for (std::size_t i = 0; i < a.storageClasses.size(); ++i) {
    const StorageClass& x = a.storageClasses[i];
    const StorageClass& y = b.storageClasses[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_NEAR(x.perGBMonth.value(), y.perGBMonth.value(), 1e-12);
    EXPECT_NEAR(x.retrievalPerGB.value(), y.retrievalPerGB.value(), 1e-12);
  }
  EXPECT_NEAR(a.transfer.inPerGB.value(), b.transfer.inPerGB.value(), 1e-12);
  EXPECT_NEAR(a.transfer.outPerGB.value(), b.transfer.outPerGB.value(), 1e-12);
}

TEST(ProviderCatalog, BuiltinContainsAllGenerations) {
  const ProviderCatalog& catalog = ProviderCatalog::builtin();
  EXPECT_EQ(catalog.size(), 5u);
  const std::vector<std::string> expected = {
      "amazon-2008", "amazon-2010", "compute-discount", "gcp-2013",
      "storage-heavy"};
  EXPECT_EQ(catalog.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(catalog.contains(name));
    ASSERT_NE(catalog.find(name), nullptr);
    EXPECT_EQ(catalog.at(name).name, name);
    EXPECT_FALSE(catalog.at(name).instanceTypes.empty());
    EXPECT_FALSE(catalog.at(name).storageClasses.empty());
  }
  EXPECT_FALSE(catalog.contains("nimbus"));
  EXPECT_EQ(catalog.find("nimbus"), nullptr);
  EXPECT_THROW(catalog.at("nimbus"), std::out_of_range);
}

TEST(ProviderCatalog, AtErrorListsKnownNames) {
  try {
    ProviderCatalog::builtin().at("nimbus");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nimbus"), std::string::npos) << what;
    EXPECT_NE(what.find("amazon-2008"), std::string::npos) << what;
  }
}

// The three historical statics must stay byte-identical to their
// pre-catalog values now that they are shims over the catalog.
TEST(ProviderCatalog, LegacyStaticsAreByteIdenticalShims) {
  const Pricing amazon = ProviderCatalog::builtin().pricing("amazon-2008");
  EXPECT_EQ(amazon.providerName, "amazon-2008");
  EXPECT_EQ(amazon.storagePerGBMonth.value(), 0.15);
  EXPECT_EQ(amazon.transferInPerGB.value(), 0.10);
  EXPECT_EQ(amazon.transferOutPerGB.value(), 0.16);
  EXPECT_EQ(amazon.cpuPerHour.value(), 0.10);

  const Pricing viaStatic = Pricing::amazon2008();
  EXPECT_EQ(viaStatic.providerName, amazon.providerName);
  EXPECT_EQ(viaStatic.storagePerGBMonth.value(),
            amazon.storagePerGBMonth.value());
  EXPECT_EQ(viaStatic.transferInPerGB.value(), amazon.transferInPerGB.value());
  EXPECT_EQ(viaStatic.transferOutPerGB.value(),
            amazon.transferOutPerGB.value());
  EXPECT_EQ(viaStatic.cpuPerHour.value(), amazon.cpuPerHour.value());

  const Pricing heavy = Pricing::storageHeavyProvider();
  EXPECT_EQ(heavy.providerName, "storage-heavy");
  EXPECT_EQ(heavy.storagePerGBMonth.value(), 75.00);
  EXPECT_EQ(heavy.transferInPerGB.value(), 0.001);
  EXPECT_EQ(heavy.transferOutPerGB.value(), 0.0016);
  EXPECT_EQ(heavy.cpuPerHour.value(), 0.10);

  const Pricing discount = Pricing::computeDiscountProvider();
  EXPECT_EQ(discount.providerName, "compute-discount");
  EXPECT_EQ(discount.storagePerGBMonth.value(), 0.30);
  EXPECT_EQ(discount.transferInPerGB.value(), 0.12);
  EXPECT_EQ(discount.transferOutPerGB.value(), 0.20);
  EXPECT_EQ(discount.cpuPerHour.value(), 0.025);
}

TEST(ProviderCatalog, PricingSelectsSkuAndNormalizesSpeed) {
  const ProviderProfile& amazon2010 =
      ProviderCatalog::builtin().at("amazon-2010");
  // c1.medium: $0.17/h at 2.5x reference speed -> $0.068 per
  // reference-CPU-hour in the normalized view.
  const Pricing p = amazon2010.pricing("c1.medium", "reduced-redundancy");
  EXPECT_DOUBLE_EQ(p.cpuPerHour.value(), 0.17 / 2.5);
  EXPECT_DOUBLE_EQ(p.storagePerGBMonth.value(), 0.10);
  EXPECT_THROW(amazon2010.pricing("m9.colossal"), std::out_of_range);
  EXPECT_THROW(amazon2010.pricing("", "tape"), std::out_of_range);
}

TEST(ProviderCatalog, SpotAndDefaultSelectors) {
  const ProviderProfile& amazon2010 =
      ProviderCatalog::builtin().at("amazon-2010");
  EXPECT_EQ(amazon2010.defaultInstance().name, "m1.small");
  EXPECT_EQ(amazon2010.defaultStorageClass().name, "standard");
  EXPECT_EQ(amazon2010.findInstance(""), &amazon2010.defaultInstance());
  EXPECT_EQ(amazon2010.findInstance("none"), nullptr);

  const InstanceType& sku = *amazon2010.findInstance("m1.small");
  EXPECT_TRUE(sku.spotCapable());
  EXPECT_DOUBLE_EQ(sku.effectiveHourlyRate(false).value(), 0.085);
  EXPECT_DOUBLE_EQ(sku.effectiveHourlyRate(true).value(), 0.085 * (1 - 0.62));

  const ProviderProfile& amazon2008 =
      ProviderCatalog::builtin().at("amazon-2008");
  EXPECT_FALSE(amazon2008.defaultInstance().spotCapable());
}

// Every builtin profile must survive encode -> decode with an identical fee
// schedule: the writer's %.12g covers every rate the catalog carries.
TEST(ProviderJson, BuiltinProfilesRoundTrip) {
  for (const auto& [name, profile] : ProviderCatalog::builtin().profiles()) {
    const json::JsonValue encoded = providerToJson(profile);
    const auto decoded = providerFromJson(encoded);
    ASSERT_TRUE(decoded.hasValue()) << name << ": " << decoded.error();
    expectSameSchedule(profile, decoded.value());
    // And the textual round-trip: dump -> parse -> decode.
    const auto reparsed = providerFromJson(json::parseJson(
        json::dumpJson(encoded)));
    ASSERT_TRUE(reparsed.hasValue()) << name << ": " << reparsed.error();
    expectSameSchedule(profile, reparsed.value());
  }
}

// The committed config/providers/*.json files are the source of truth the
// docs point at; each must decode to exactly the builtin profile.
TEST(ProviderJson, CommittedProfilesMatchBuiltin) {
  const auto loaded = loadProviderCatalog(MCSIM_PROVIDERS_DIR);
  ASSERT_TRUE(loaded.hasValue()) << loaded.error();
  const ProviderCatalog& builtin = ProviderCatalog::builtin();
  EXPECT_EQ(loaded.value().names(), builtin.names());
  for (const std::string& name : builtin.names()) {
    SCOPED_TRACE(name);
    expectSameSchedule(builtin.at(name), loaded.value().at(name));
  }
}

// amazon2008() (the shim) must agree with the committed JSON file — the
// decimal literals in the file parse to the same doubles the code uses.
TEST(ProviderJson, Amazon2008FileMatchesStatic) {
  const auto profile = loadProviderProfile(
      std::string(MCSIM_PROVIDERS_DIR) + "/amazon-2008.json");
  ASSERT_TRUE(profile.hasValue()) << profile.error();
  const Pricing fromFile = profile.value().pricing();
  const Pricing fromStatic = Pricing::amazon2008();
  EXPECT_EQ(fromFile.storagePerGBMonth.value(),
            fromStatic.storagePerGBMonth.value());
  EXPECT_EQ(fromFile.transferInPerGB.value(),
            fromStatic.transferInPerGB.value());
  EXPECT_EQ(fromFile.transferOutPerGB.value(),
            fromStatic.transferOutPerGB.value());
  EXPECT_EQ(fromFile.cpuPerHour.value(), fromStatic.cpuPerHour.value());
}

TEST(ProviderJson, LoadReportsMissingFile) {
  const auto result = loadProviderProfile("/nonexistent/provider.json");
  ASSERT_FALSE(result.hasValue());
  EXPECT_NE(result.error().find("/nonexistent/provider.json"),
            std::string::npos)
      << result.error();
}

TEST(ProviderJson, LoadCatalogReportsMissingDirectory) {
  const auto result = loadProviderCatalog("/nonexistent/providers");
  ASSERT_FALSE(result.hasValue());
  EXPECT_NE(result.error().find("/nonexistent/providers"), std::string::npos)
      << result.error();
}

// Fuzz-style rejection table: every malformed or partial profile must come
// back through the Expected channel with an actionable, path-qualified
// message — never an exception, never a silently-defaulted field.
TEST(ProviderJson, MalformedProfilesRejectedWithActionableMessages) {
  const std::string valid = R"({
    "name": "p", "year": 2008,
    "instance_types": [
      {"name": "std", "speed_factor": 1.0, "hourly_rate": 0.1,
       "billing": "per-second"}],
    "storage_classes": [{"name": "std", "per_gb_month": 0.15}],
    "transfer": {"in_per_gb": 0.1, "out_per_gb": 0.16}
  })";
  {
    const auto ok = providerFromJson(json::parseJson(valid));
    ASSERT_TRUE(ok.hasValue()) << ok.error();
  }

  struct Case {
    const char* label;
    const char* text;          // Full JSON document to decode.
    const char* expectInError; // Substring the message must carry.
  };
  const std::vector<Case> cases = {
      {"not an object", R"([1, 2])", "profile: expected a JSON object"},
      {"missing name",
       R"({"instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.name"},
      {"empty name",
       R"({"name": "", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.name"},
      {"name wrong type",
       R"({"name": 7, "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.name"},
      {"unknown top-level key",
       R"({"name": "p", "cpu_per_hour": 0.1,
           "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "cpu_per_hour"},
      {"missing instance_types",
       R"({"name": "p",
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types"},
      {"empty instance_types",
       R"({"name": "p", "instance_types": [],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types"},
      {"negative speed factor",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": -2,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[0].speed_factor"},
      {"negative hourly rate",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": -0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[0].hourly_rate"},
      {"bad billing granularity",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-fortnight"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[0].billing"},
      {"spot discount of 1 would be free",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second",
           "spot_discount": 1.0}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[0].spot_discount"},
      {"negative interruptions",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second",
           "interruptions_per_hour": -1}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[0].interruptions_per_hour"},
      {"duplicate instance name",
       R"({"name": "p", "instance_types": [
           {"name": "s", "speed_factor": 1, "hourly_rate": 0.1,
            "billing": "per-second"},
           {"name": "s", "speed_factor": 2, "hourly_rate": 0.2,
            "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.instance_types[1].name"},
      {"unknown instance key",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second", "cores": 4}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "cores"},
      {"missing storage_classes",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.storage_classes"},
      {"negative storage rate",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": -0.1}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.storage_classes[0].per_gb_month"},
      {"negative retrieval fee",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1,
            "retrieval_per_gb": -0.5}],
           "transfer": {"in_per_gb": 0, "out_per_gb": 0}})",
       "profile.storage_classes[0].retrieval_per_gb"},
      {"missing transfer",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}]})",
       "profile.transfer"},
      {"transfer missing egress",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": 0}})",
       "profile.transfer.out_per_gb"},
      {"negative ingress",
       R"({"name": "p", "instance_types": [{"name": "s", "speed_factor": 1,
           "hourly_rate": 0.1, "billing": "per-second"}],
           "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
           "transfer": {"in_per_gb": -1, "out_per_gb": 0}})",
       "profile.transfer.in_per_gb"},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    const auto result = providerFromJson(json::parseJson(c.text));
    ASSERT_FALSE(result.hasValue())
        << "accepted a malformed profile: " << c.label;
    EXPECT_NE(result.error().find(c.expectInError), std::string::npos)
        << "error was: " << result.error();
  }
}

// A syntactically-broken file and a duplicate profile name both fail the
// directory load with the offending path in the message.
TEST(ProviderJson, LoadCatalogRejectsBadFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mcsim_provider_test_catalog";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream(dir / "good.json") << R"({
      "name": "good",
      "instance_types": [{"name": "s", "speed_factor": 1.0,
        "hourly_rate": 0.1, "billing": "per-second"}],
      "storage_classes": [{"name": "s", "per_gb_month": 0.1}],
      "transfer": {"in_per_gb": 0.0, "out_per_gb": 0.0}
    })";
    std::ofstream(dir / "broken.json") << "{ not json";
  }
  const auto broken = loadProviderCatalog(dir.string());
  ASSERT_FALSE(broken.hasValue());
  EXPECT_NE(broken.error().find("broken.json"), std::string::npos)
      << broken.error();

  // Same profile name under two filenames: ambiguous, rejected.
  fs::remove(dir / "broken.json");
  {
    std::ofstream(dir / "also-good.json") << R"({
      "name": "good",
      "instance_types": [{"name": "s", "speed_factor": 1.0,
        "hourly_rate": 0.2, "billing": "per-second"}],
      "storage_classes": [{"name": "s", "per_gb_month": 0.2}],
      "transfer": {"in_per_gb": 0.0, "out_per_gb": 0.0}
    })";
  }
  const auto duplicate = loadProviderCatalog(dir.string());
  ASSERT_FALSE(duplicate.hasValue());
  EXPECT_NE(duplicate.error().find("good"), std::string::npos)
      << duplicate.error();
  fs::remove_all(dir);
}

TEST(Billing, PerMinuteGranularityRoundsUp) {
  EXPECT_DOUBLE_EQ(billedSeconds(0.0, BillingGranularity::PerMinute), 0.0);
  EXPECT_DOUBLE_EQ(billedSeconds(1.0, BillingGranularity::PerMinute), 60.0);
  EXPECT_DOUBLE_EQ(billedSeconds(60.0, BillingGranularity::PerMinute), 60.0);
  EXPECT_DOUBLE_EQ(billedSeconds(61.0, BillingGranularity::PerMinute), 120.0);
  EXPECT_STREQ(billingGranularityName(BillingGranularity::PerMinute),
               "per-minute");
  BillingGranularity g = BillingGranularity::PerSecond;
  EXPECT_TRUE(parseBillingGranularity("per-minute", g));
  EXPECT_EQ(g, BillingGranularity::PerMinute);
  EXPECT_FALSE(parseBillingGranularity("per-decade", g));
}

}  // namespace
}  // namespace mcsim::cloud
