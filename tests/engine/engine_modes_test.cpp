// Mode-comparison invariants on the real Montage workloads -- the claims
// Figures 7-10 rest on.
#include <gtest/gtest.h>

#include <limits>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::engine {
namespace {

struct ModeRuns {
  ExecutionResult remote, regular, cleanup;
};

ModeRuns runAllModes(const dag::Workflow& wf, int processors) {
  EngineConfig cfg;
  cfg.processors = processors;
  // Question-2 network model (see analysis::dataModeComparison): every
  // transfer gets the nominal bandwidth.
  cfg.linkSharing = sim::LinkSharing::Dedicated;
  cfg.mode = DataMode::RemoteIO;
  ModeRuns runs{simulateWorkflow(wf, cfg), {}, {}};
  cfg.mode = DataMode::Regular;
  runs.regular = simulateWorkflow(wf, cfg);
  cfg.mode = DataMode::DynamicCleanup;
  runs.cleanup = simulateWorkflow(wf, cfg);
  return runs;
}

class MontageModes : public ::testing::TestWithParam<double> {
 protected:
  static dag::Workflow buildParam() {
    return montage::buildMontageWorkflow(GetParam());
  }
};

// The 4-degree workflow (3,027 tasks) is exercised by the integration tests;
// parameterizing 1 and 2 degrees keeps this suite fast.
INSTANTIATE_TEST_SUITE_P(Workflows, MontageModes, ::testing::Values(1.0, 2.0));

TEST_P(MontageModes, StorageOrderRemoteLeastRegularMost) {
  // Paper Fig 7 (top): "The least storage used is in the remote I/O mode...
  // The most storage is used in the regular mode."
  const auto wf = buildParam();
  const auto runs =
      runAllModes(wf, static_cast<int>(dag::maxParallelism(wf)));
  EXPECT_LT(runs.remote.storageByteSeconds, runs.cleanup.storageByteSeconds);
  EXPECT_LT(runs.cleanup.storageByteSeconds, runs.regular.storageByteSeconds);
}

TEST_P(MontageModes, TransferOrderRemoteMost) {
  // Paper Fig 7 (middle): most data transfer in remote I/O; regular equals
  // cleanup; remote stages out more (intermediates go back to the user).
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 32);
  EXPECT_GT(runs.remote.bytesIn, runs.regular.bytesIn);
  EXPECT_GT(runs.remote.bytesOut, runs.regular.bytesOut);
  EXPECT_DOUBLE_EQ(runs.regular.bytesIn.value(), runs.cleanup.bytesIn.value());
  EXPECT_DOUBLE_EQ(runs.regular.bytesOut.value(),
                   runs.cleanup.bytesOut.value());
}

TEST_P(MontageModes, RegularBoundaryBytesMatchWorkflow) {
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 16);
  EXPECT_NEAR(runs.regular.bytesIn.value(), wf.externalInputBytes().value(),
              1.0);
  EXPECT_NEAR(runs.regular.bytesOut.value(), wf.workflowOutputBytes().value(),
              1.0);
}

TEST_P(MontageModes, RemoteBytesMatchPerUseAccounting) {
  const auto wf = buildParam();
  double expectedIn = 0.0, expectedOut = 0.0;
  for (const dag::Task& t : wf.tasks()) {
    for (dag::FileId f : t.inputs) expectedIn += wf.file(f).size.value();
    for (dag::FileId f : t.outputs) expectedOut += wf.file(f).size.value();
  }
  const auto runs = runAllModes(wf, 16);
  EXPECT_NEAR(runs.remote.bytesIn.value(), expectedIn, 1.0);
  EXPECT_NEAR(runs.remote.bytesOut.value(), expectedOut, 1.0);
}

TEST_P(MontageModes, CpuWorkInvariant) {
  // Fig 10: "The CPU cost is invariant between the three execution modes."
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 16);
  EXPECT_NEAR(runs.remote.cpuBusySeconds, wf.totalRuntimeSeconds(), 1e-6);
  EXPECT_NEAR(runs.regular.cpuBusySeconds, wf.totalRuntimeSeconds(), 1e-6);
  EXPECT_NEAR(runs.cleanup.cpuBusySeconds, wf.totalRuntimeSeconds(), 1e-6);
}

TEST_P(MontageModes, AllTasksExecuteInEveryMode) {
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 8);
  EXPECT_EQ(runs.remote.tasksExecuted, wf.taskCount());
  EXPECT_EQ(runs.regular.tasksExecuted, wf.taskCount());
  EXPECT_EQ(runs.cleanup.tasksExecuted, wf.taskCount());
}

TEST_P(MontageModes, CleanupDoesNotChangeMakespan) {
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 16);
  EXPECT_NEAR(runs.regular.makespanSeconds, runs.cleanup.makespanSeconds,
              1e-6);
}

TEST_P(MontageModes, RemoteIoSlowerThanRegular) {
  // Per-task staging serializes I/O with compute.
  const auto wf = buildParam();
  const auto runs = runAllModes(wf, 16);
  EXPECT_GT(runs.remote.makespanSeconds, runs.regular.makespanSeconds);
}

class MontageSpeedup : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorLadder, MontageSpeedup,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST_P(MontageSpeedup, MakespanRespectsBounds) {
  static const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.processors = GetParam();
  cfg.mode = DataMode::Regular;
  const auto r = simulateWorkflow(wf, cfg);
  const double transferFloor =
      (wf.externalInputBytes() + wf.workflowOutputBytes()).value() /
      cfg.linkBandwidthBytesPerSec;
  // Lower bounds: critical path, work/P.
  EXPECT_GE(r.makespanSeconds,
            wf.totalRuntimeSeconds() / GetParam() - 1e-6);
  EXPECT_GE(r.makespanSeconds, dag::criticalPathSeconds(wf) - 1e-6);
  // Upper bound: all transfers + all work serialized.
  EXPECT_LE(r.makespanSeconds,
            transferFloor + wf.totalRuntimeSeconds() + 1e-6);
}

TEST(MontageSpeedupCurve, MakespanMonotoneNonIncreasing) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  double previous = std::numeric_limits<double>::infinity();
  for (int p : {1, 2, 4, 8, 16, 32, 64, 128}) {
    cfg.processors = p;
    const double makespan = simulateWorkflow(wf, cfg).makespanSeconds;
    EXPECT_LE(makespan, previous + 1e-6) << p << " procs";
    previous = makespan;
  }
}

TEST(MontageSpeedupCurve, ProvisionedProcessorSecondsGrowWithP) {
  // The economic core of Question 1: more processors finish faster but the
  // paid processor-time (P x makespan) grows, so total cost rises.
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  double previous = 0.0;
  for (int p : {1, 4, 16, 64, 128}) {
    cfg.processors = p;
    const auto r = simulateWorkflow(wf, cfg);
    const double paid = static_cast<double>(p) * r.makespanSeconds;
    EXPECT_GT(paid, previous) << p << " procs";
    previous = paid;
  }
}

}  // namespace
}  // namespace mcsim::engine
