// Property tests for the engine's extension features (release times,
// failure injection, storage caps) over random DAGs: the baseline
// invariants must keep holding with the features engaged.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/dag/cleanup.hpp"
#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::engine {
namespace {

class FeatureProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    wf_ = std::make_unique<dag::Workflow>(dag::makeRandomWorkflow(GetParam()));
  }
  std::unique_ptr<dag::Workflow> wf_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureProperties,
                         ::testing::Range<std::uint64_t>(300, 316));

TEST_P(FeatureProperties, ReleaseTimesOnlyDelay) {
  EngineConfig cfg;
  cfg.processors = 4;
  const auto baseline = simulateWorkflow(*wf_, cfg);

  dag::Workflow delayed = *wf_;
  for (const dag::Task& t : delayed.tasks())
    if (t.parents.empty())
      delayed.setEarliestStart(t.id, 500.0 + 10.0 * t.id);
  const auto shifted = simulateWorkflow(delayed, cfg);
  EXPECT_EQ(shifted.tasksExecuted, wf_->taskCount());
  EXPECT_GE(shifted.makespanSeconds, baseline.makespanSeconds - 1e-6);
  EXPECT_GE(shifted.makespanSeconds, 500.0);
  // Work and data are untouched by arrival timing.
  EXPECT_NEAR(shifted.cpuBusySeconds, baseline.cpuBusySeconds, 1e-6);
  EXPECT_NEAR(shifted.bytesIn.value(), baseline.bytesIn.value(), 1.0);
  EXPECT_NEAR(shifted.bytesOut.value(), baseline.bytesOut.value(), 1.0);
}

TEST_P(FeatureProperties, FailureInjectionPreservesCompletion) {
  EngineConfig cfg;
  cfg.processors = 4;
  cfg.taskFailureProbability = 0.25;
  cfg.failureSeed = GetParam() + 1;
  const auto r = simulateWorkflow(*wf_, cfg);
  EXPECT_EQ(r.tasksExecuted, wf_->taskCount());
  // Billed CPU = base work + one full runtime per retry (all runtimes are
  // uniform-random, so verify against the accounting identity instead of a
  // closed form): cpuBusy >= total work, with equality iff no retries.
  EXPECT_GE(r.cpuBusySeconds, wf_->totalRuntimeSeconds() - 1e-6);
  if (r.taskRetries == 0)
    EXPECT_NEAR(r.cpuBusySeconds, wf_->totalRuntimeSeconds(), 1e-6);
  else
    EXPECT_GT(r.cpuBusySeconds, wf_->totalRuntimeSeconds());
  // Transfers unaffected by compute retries (regular mode).
  EXPECT_NEAR(r.bytesIn.value(), wf_->externalInputBytes().value(), 1.0);
}

TEST_P(FeatureProperties, CapsCompleteOrDeadlockExplicitly) {
  // The storage-cap contract: at any cap the run either completes while
  // respecting the cap, or throws an explicit deadlock -- it never silently
  // overruns.  (Capping at the *observed* unconstrained peak is NOT
  // guaranteed feasible: admission also counts unmaterialized reservations,
  // and cleanup's frees can form circular waits -- the classic
  // storage-constrained-scheduling hazard the Pegasus work addresses.)
  EngineConfig cfg;
  cfg.processors = 4;
  cfg.mode = DataMode::DynamicCleanup;
  const auto unconstrained = simulateWorkflow(*wf_, cfg);
  for (double scale : {2.0, 1.0, 0.5}) {
    cfg.storageCapacityBytes =
        unconstrained.peakStorageBytes.value() * scale + 1.0;
    try {
      const auto r = simulateWorkflow(*wf_, cfg);
      EXPECT_LE(r.peakStorageBytes.value(), cfg.storageCapacityBytes + 1e-6)
          << "scale " << scale;
      EXPECT_EQ(r.tasksExecuted, wf_->taskCount()) << "scale " << scale;
    } catch (const std::runtime_error& e) {
      // Two explicit failure paths exist: blocked-task deadlock and
      // stage-in overflow (external inputs alone exceed the cap).
      const std::string what = e.what();
      EXPECT_TRUE(what.find("deadlock") != std::string::npos ||
                  what.find("stage-in overflow") != std::string::npos)
          << "scale " << scale << ": " << what;
    }
  }
}

TEST_P(FeatureProperties, GenerousCapAlwaysFeasible) {
  // A cap covering the unconstrained peak plus one full working set per
  // processor never blocks admission spuriously: completion holds across
  // the whole seed range.
  EngineConfig cfg;
  cfg.processors = 4;
  cfg.mode = DataMode::DynamicCleanup;
  const auto unconstrained = simulateWorkflow(*wf_, cfg);
  double maxDemand = 0.0;
  for (const dag::Task& t : wf_->tasks()) {
    double demand = 0.0;
    for (dag::FileId f : t.outputs) demand += wf_->file(f).size.value();
    maxDemand = std::max(maxDemand, demand);
  }
  cfg.storageCapacityBytes =
      unconstrained.peakStorageBytes.value() + 4.0 * maxDemand + 1.0;
  const auto r = simulateWorkflow(*wf_, cfg);
  EXPECT_EQ(r.tasksExecuted, wf_->taskCount());
  EXPECT_LE(r.peakStorageBytes.value(), cfg.storageCapacityBytes + 1e-6);
}

TEST_P(FeatureProperties, FeaturesComposeDeterministically) {
  EngineConfig cfg;
  cfg.processors = 3;
  cfg.mode = DataMode::DynamicCleanup;
  cfg.taskFailureProbability = 0.1;
  cfg.failureSeed = 42;
  dag::Workflow delayed = *wf_;
  for (const dag::Task& t : delayed.tasks())
    if (t.parents.empty()) delayed.setEarliestStart(t.id, 60.0);
  const auto a = simulateWorkflow(delayed, cfg);
  const auto b = simulateWorkflow(delayed, cfg);
  EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
  EXPECT_EQ(a.taskRetries, b.taskRetries);
  EXPECT_DOUBLE_EQ(a.storageByteSeconds, b.storageByteSeconds);
}

}  // namespace
}  // namespace mcsim::engine
