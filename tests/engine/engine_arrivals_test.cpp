// Release times / staggered arrivals: requests hitting a running service
// over time (Question 2's operating scenario under load).
#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/dag/dax.hpp"
#include "mcsim/dag/merge.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::engine {
namespace {

using test::makeChainWorkflow;

EngineConfig fastLink(int procs) {
  EngineConfig cfg;
  cfg.processors = procs;
  cfg.linkBandwidthBytesPerSec = 1e9;  // transfers negligible
  return cfg;
}

TEST(Arrivals, ReleaseTimeDelaysSourceTask) {
  auto wf = makeChainWorkflow(2, 10.0);
  wf.setEarliestStart(0, 100.0);
  EngineConfig cfg = fastLink(1);
  cfg.trace = true;
  const auto r = simulateWorkflow(wf, cfg);
  EXPECT_GE(r.taskRecords[0].startTime, 100.0);
  EXPECT_NEAR(r.makespanSeconds, 120.0, 0.1);
}

TEST(Arrivals, ZeroReleaseIsDefaultBehaviour) {
  auto wf = makeChainWorkflow(2, 10.0);
  wf.setEarliestStart(0, 0.0);
  const auto r = simulateWorkflow(wf, fastLink(1));
  EXPECT_NEAR(r.makespanSeconds, 20.0, 0.1);
}

TEST(Arrivals, ReleaseCombinesWithDependencies) {
  // A child gated both by its parent (finishes at ~10) and a 50 s release:
  // it starts at the later of the two.
  auto wf = makeChainWorkflow(2, 10.0);
  wf.setEarliestStart(1, 50.0);
  EngineConfig cfg = fastLink(2);
  cfg.trace = true;
  const auto r = simulateWorkflow(wf, cfg);
  EXPECT_GE(r.taskRecords[1].startTime, 50.0);
  EXPECT_NEAR(r.makespanSeconds, 60.0, 0.1);

  // Release earlier than the parent finish changes nothing.
  auto wf2 = makeChainWorkflow(2, 10.0);
  wf2.setEarliestStart(1, 5.0);
  const auto r2 = simulateWorkflow(wf2, fastLink(2));
  EXPECT_NEAR(r2.makespanSeconds, 20.0, 0.1);
}

TEST(Arrivals, NegativeReleaseRejected) {
  auto wf = makeChainWorkflow(2);
  EXPECT_THROW(wf.setEarliestStart(0, -1.0), std::invalid_argument);
}

TEST(Arrivals, StaggeredMergeReleasesEachPart) {
  const auto request = makeChainWorkflow(3, 10.0);
  const std::vector<dag::Workflow> parts(4, request);
  const dag::Workflow stream =
      dag::mergeWorkflowsStaggered(parts, {0.0, 100.0, 200.0, 300.0});
  EngineConfig cfg = fastLink(64);
  cfg.trace = true;
  const auto r = simulateWorkflow(stream, cfg);
  const auto offsets = dag::partTaskOffsets(parts);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const double release = 100.0 * static_cast<double>(i);
    EXPECT_GE(r.taskRecords[offsets[i]].startTime, release) << "part " << i;
    // Each request still takes its own 30 s once released.
    EXPECT_NEAR(r.taskRecords[offsets[i + 1] - 1].finishTime, release + 30.0,
                0.1)
        << "part " << i;
  }
  EXPECT_NEAR(r.makespanSeconds, 330.0, 0.5);
}

TEST(Arrivals, ContentionDelaysLaterArrivals) {
  // One processor, two requests released 5 s apart: the second waits for
  // the first to finish entirely.
  const auto request = makeChainWorkflow(2, 10.0);
  const std::vector<dag::Workflow> parts(2, request);
  const dag::Workflow stream =
      dag::mergeWorkflowsStaggered(parts, {0.0, 5.0});
  const auto r = simulateWorkflow(stream, fastLink(1));
  EXPECT_NEAR(r.makespanSeconds, 40.0, 0.1);
}

TEST(Arrivals, OffsetsCoverAllParts) {
  const auto a = makeChainWorkflow(3);
  const auto b = makeChainWorkflow(5);
  const auto offsets = dag::partTaskOffsets({a, b});
  EXPECT_EQ(offsets, (std::vector<dag::TaskId>{0, 3, 8}));
}

TEST(Arrivals, StaggeredMergeValidation) {
  const auto wf = makeChainWorkflow(2);
  EXPECT_THROW(dag::mergeWorkflowsStaggered({wf, wf}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(dag::mergeWorkflowsStaggered({wf}, {-1.0}),
               std::invalid_argument);
}

TEST(Arrivals, ReleaseSurvivesDaxRoundTrip) {
  auto wf = makeChainWorkflow(2, 10.0);
  wf.setEarliestStart(0, 42.5);
  const dag::Workflow back = dag::readDax(dag::writeDax(wf));
  EXPECT_DOUBLE_EQ(back.task(0).earliestStartSeconds, 42.5);
  EXPECT_DOUBLE_EQ(back.task(1).earliestStartSeconds, 0.0);
}

}  // namespace
}  // namespace mcsim::engine
