// Differential coverage of EngineConfig::referenceCore: whole-workflow runs
// on the reference core (lazy-deletion priority-queue calendar, O(n)-rescan
// link) must agree with the optimized core (arena heap, virtual-time link)
// — exactly on event counts and orderings, and to tight floating-point
// tolerance on times and billed quantities (the virtual-time scheduler
// accumulates shares in a different order than the per-boundary rescan).
#include "mcsim/engine/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mcsim/montage/factory.hpp"
#include "mcsim/obs/sink.hpp"
#include "mcsim/workflows/gallery.hpp"

namespace mcsim::engine {
namespace {

constexpr double kTol = 1e-6;  // relative

void expectClose(double a, double b, const char* what) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), kTol * scale) << what << ": " << a << " vs " << b;
}

void expectEquivalent(const dag::Workflow& wf, EngineConfig cfg) {
  cfg.referenceCore = false;
  const ExecutionResult fast = simulateWorkflow(wf, cfg);
  cfg.referenceCore = true;
  const ExecutionResult ref = simulateWorkflow(wf, cfg);

  EXPECT_EQ(fast.completed(), ref.completed());
  expectClose(fast.makespanSeconds, ref.makespanSeconds, "makespan");
  expectClose(fast.cpuBusySeconds, ref.cpuBusySeconds, "cpuBusySeconds");
  expectClose(fast.storageByteSeconds, ref.storageByteSeconds,
              "storageByteSeconds");
  expectClose(fast.bytesIn.value(), ref.bytesIn.value(), "bytesIn");
  expectClose(fast.bytesOut.value(), ref.bytesOut.value(), "bytesOut");
  expectClose(fast.peakStorageBytes.value(), ref.peakStorageBytes.value(),
              "peakStorage");
}

TEST(ReferenceCore, AgreesOnMontageRegular) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  cfg.processors = 8;
  expectEquivalent(wf, cfg);
}

TEST(ReferenceCore, AgreesOnMontageCleanupFairShare) {
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = DataMode::DynamicCleanup;
  cfg.processors = 4;
  cfg.linkSharing = sim::LinkSharing::FairShare;
  expectEquivalent(wf, cfg);
}

TEST(ReferenceCore, AgreesOnMontageRemoteIo) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  EngineConfig cfg;
  cfg.mode = DataMode::RemoteIO;
  cfg.processors = 4;
  cfg.linkSharing = sim::LinkSharing::FairShare;
  expectEquivalent(wf, cfg);
}

TEST(ReferenceCore, AgreesUnderFaultsAndDeadline) {
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  cfg.processors = 4;
  cfg.faults.processor.mtbfSeconds = 600.0;
  cfg.faults.retry.maxRetries = 3;
  cfg.faults.seed = 7;
  expectEquivalent(wf, cfg);
}

TEST(ReferenceCore, AgreesAcrossGalleryWorkflows) {
  for (const dag::Workflow& wf : workflows::buildGallery()) {
    EngineConfig cfg;
    cfg.mode = DataMode::Regular;
    cfg.processors = 8;
    expectEquivalent(wf, cfg);
  }
}

TEST(ReferenceCore, EventStreamsMatchKindForKind) {
  // Every telemetry event must appear in the same order with the same kind
  // on both cores; times agree to tolerance.
  const dag::Workflow wf = montage::buildMontageWorkflow(0.4);
  auto record = [&](bool reference) {
    obs::CollectingSink sink;
    EngineConfig cfg;
    cfg.mode = DataMode::DynamicCleanup;
    cfg.processors = 4;
    cfg.linkSharing = sim::LinkSharing::FairShare;
    cfg.referenceCore = reference;
    cfg.observer = &sink;
    simulateWorkflow(wf, cfg);
    return sink.take();
  };
  const auto fast = record(false);
  const auto ref = record(true);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].payload.index(), ref[i].payload.index()) << i;
    expectClose(fast[i].time, ref[i].time, "event time");
  }
}

}  // namespace
}  // namespace mcsim::engine
