// Configuration surface: validation, VM overheads, outages, link sharing,
// scheduler policies, degenerate workflows.
#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::engine {
namespace {

using test::makeFigure3Workflow;

EngineConfig basic(DataMode mode = DataMode::Regular, int procs = 2) {
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.processors = procs;
  cfg.linkBandwidthBytesPerSec = 1e6;
  return cfg;
}

TEST(EngineConfigTest, InvalidConfigsRejected) {
  const auto fig = makeFigure3Workflow();
  EngineConfig cfg = basic();
  cfg.processors = 0;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
  cfg = basic();
  cfg.vmStartupSeconds = -1.0;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
  cfg = basic();
  cfg.vmTeardownSeconds = -1.0;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
  cfg = basic();
  cfg.linkBandwidthBytesPerSec = 0.0;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
  cfg = basic();
  cfg.outages.push_back({-1.0, 5.0});
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
}

TEST(EngineConfigTest, UnfinalizedWorkflowRejected) {
  dag::Workflow wf("raw");
  wf.addTask("t", "t", 1.0);
  EXPECT_THROW(simulateWorkflow(wf, basic()), std::invalid_argument);
}

TEST(EngineConfigTest, EmptyWorkflowCompletesImmediately) {
  dag::Workflow wf("empty");
  wf.finalize();
  const auto r = simulateWorkflow(wf, basic());
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 0.0);
  EXPECT_EQ(r.tasksExecuted, 0u);
}

TEST(EngineConfigTest, VmOverheadsExtendMakespanExactly) {
  // Paper §8: startup/teardown "would be an additional constant cost."
  const auto fig = makeFigure3Workflow();
  const auto plain = simulateWorkflow(fig.wf, basic(DataMode::Regular, 1));
  EngineConfig cfg = basic(DataMode::Regular, 1);
  cfg.vmStartupSeconds = 120.0;
  cfg.vmTeardownSeconds = 30.0;
  const auto padded = simulateWorkflow(fig.wf, cfg);
  EXPECT_NEAR(padded.makespanSeconds, plain.makespanSeconds + 150.0, 1e-9);
  // Work and transfers are unchanged.
  EXPECT_DOUBLE_EQ(padded.cpuBusySeconds, plain.cpuBusySeconds);
  EXPECT_DOUBLE_EQ(padded.bytesIn.value(), plain.bytesIn.value());
}

TEST(EngineConfigTest, VmOverheadAppliesToEmptyWorkflow) {
  dag::Workflow wf("empty");
  wf.finalize();
  EngineConfig cfg = basic();
  cfg.vmStartupSeconds = 60.0;
  cfg.vmTeardownSeconds = 60.0;
  const auto r = simulateWorkflow(wf, cfg);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 120.0);
}

TEST(EngineConfigTest, OutageDelaysStageInExactly) {
  // Figure 3's stage-in is 1 s of transfer; an outage covering [0.5, 10.5)
  // stalls it for 10 s, shifting the whole regular schedule.
  const auto fig = makeFigure3Workflow();
  const auto plain = simulateWorkflow(fig.wf, basic(DataMode::Regular, 1));
  EngineConfig cfg = basic(DataMode::Regular, 1);
  cfg.outages.push_back({0.5, 10.0});
  const auto hit = simulateWorkflow(fig.wf, cfg);
  EXPECT_NEAR(hit.makespanSeconds, plain.makespanSeconds + 10.0, 1e-9);
}

TEST(EngineConfigTest, OutageDuringComputeOnlyIsHarmless) {
  // An outage while no transfer is in flight does not affect the schedule
  // (running tasks are unaffected; paper §8 discusses storage availability).
  const auto fig = makeFigure3Workflow();
  const auto plain = simulateWorkflow(fig.wf, basic(DataMode::Regular, 1));
  EngineConfig cfg = basic(DataMode::Regular, 1);
  cfg.outages.push_back({20.0, 5.0});  // mid-compute, transfers idle
  const auto hit = simulateWorkflow(fig.wf, cfg);
  EXPECT_NEAR(hit.makespanSeconds, plain.makespanSeconds, 1e-9);
}

TEST(EngineConfigTest, RemoteIoSuffersMoreFromOutages) {
  // Remote I/O transfers continuously, so a long outage window is far more
  // likely to stall it than the regular mode's single stage-in/out.
  const auto fig = makeFigure3Workflow();
  EngineConfig remote = basic(DataMode::RemoteIO, 2);
  EngineConfig regular = basic(DataMode::Regular, 2);
  const double remotePlain = simulateWorkflow(fig.wf, remote).makespanSeconds;
  const double regularPlain =
      simulateWorkflow(fig.wf, regular).makespanSeconds;
  const Outage midRun{15.0, 20.0};
  remote.outages.push_back(midRun);
  regular.outages.push_back(midRun);
  const double remoteHit = simulateWorkflow(fig.wf, remote).makespanSeconds;
  const double regularHit = simulateWorkflow(fig.wf, regular).makespanSeconds;
  EXPECT_GT(remoteHit - remotePlain, 1.0);
  EXPECT_GE(remoteHit - remotePlain, regularHit - regularPlain);
}

TEST(EngineConfigTest, DedicatedLinkNeverSlower) {
  const auto fig = makeFigure3Workflow();
  EngineConfig fair = basic(DataMode::RemoteIO, 4);
  fair.linkSharing = sim::LinkSharing::FairShare;
  EngineConfig dedicated = basic(DataMode::RemoteIO, 4);
  dedicated.linkSharing = sim::LinkSharing::Dedicated;
  EXPECT_LE(simulateWorkflow(fig.wf, dedicated).makespanSeconds,
            simulateWorkflow(fig.wf, fair).makespanSeconds + 1e-9);
}

TEST(EngineConfigTest, CriticalPathFirstBeatsFifoOnAdversarialGraph) {
  // External file x feeds S1, S2 (10 s sinks) and L (1 s head of a 100 s
  // chain).  FIFO readiness order starts S1, S2 on the two processors and
  // strands the long chain; CP-first starts L immediately.
  dag::Workflow wf("adversarial");
  const dag::FileId x = wf.addFile("x", Bytes(1.0));
  const dag::TaskId s1 = wf.addTask("s1", "short", 10.0);
  wf.addInput(s1, x);
  const dag::FileId s1o = wf.addFile("s1o", Bytes(1.0));
  wf.addOutput(s1, s1o);
  const dag::TaskId s2 = wf.addTask("s2", "short", 10.0);
  wf.addInput(s2, x);
  const dag::FileId s2o = wf.addFile("s2o", Bytes(1.0));
  wf.addOutput(s2, s2o);
  const dag::TaskId l = wf.addTask("l", "head", 1.0);
  wf.addInput(l, x);
  const dag::FileId lo = wf.addFile("lo", Bytes(1.0));
  wf.addOutput(l, lo);
  const dag::TaskId l2 = wf.addTask("l2", "chain", 100.0);
  wf.addInput(l2, lo);
  const dag::FileId l2o = wf.addFile("l2o", Bytes(1.0));
  wf.addOutput(l2, l2o);
  wf.finalize();

  EngineConfig fifo = basic(DataMode::Regular, 2);
  fifo.scheduler = SchedulerPolicy::Fifo;
  EngineConfig cpf = fifo;
  cpf.scheduler = SchedulerPolicy::CriticalPathFirst;
  const double fifoSpan = simulateWorkflow(wf, fifo).makespanSeconds;
  const double cpfSpan = simulateWorkflow(wf, cpf).makespanSeconds;
  EXPECT_LT(cpfSpan, fifoSpan - 5.0);
}

TEST(EngineConfigTest, SourceOnlyTasksRunWithoutStageIn) {
  // A workflow whose tasks have no inputs at all: they are ready at t=0.
  dag::Workflow wf("no-inputs");
  const dag::TaskId t = wf.addTask("gen", "gen", 5.0);
  const dag::FileId out = wf.addFile("out", Bytes::fromMB(2.0));
  wf.addOutput(t, out);
  wf.finalize();
  const auto r = simulateWorkflow(wf, basic(DataMode::Regular, 1));
  // 5 s compute + 2 s stage-out at 1 MB/s.
  EXPECT_NEAR(r.makespanSeconds, 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.bytesIn.value(), 0.0);
  EXPECT_NEAR(r.bytesOut.mb(), 2.0, 1e-9);
}

TEST(EngineConfigTest, ZeroRuntimeTasksComplete) {
  dag::Workflow wf("zero");
  const dag::FileId in = wf.addFile("in", Bytes(1.0));
  const dag::TaskId t = wf.addTask("t", "t", 0.0);
  wf.addInput(t, in);
  const dag::FileId out = wf.addFile("out", Bytes(1.0));
  wf.addOutput(t, out);
  wf.finalize();
  for (DataMode mode : {DataMode::RemoteIO, DataMode::Regular,
                        DataMode::DynamicCleanup}) {
    const auto r = simulateWorkflow(wf, basic(mode, 1));
    EXPECT_EQ(r.tasksExecuted, 1u) << dataModeName(mode);
    EXPECT_DOUBLE_EQ(r.cpuBusySeconds, 0.0);
  }
}

TEST(EngineConfigTest, BandwidthScalesTransferTime) {
  const auto fig = makeFigure3Workflow();
  EngineConfig slow = basic(DataMode::Regular, 4);
  slow.linkBandwidthBytesPerSec = 0.5e6;  // half speed
  const auto fast = simulateWorkflow(fig.wf, basic(DataMode::Regular, 4));
  const auto slowR = simulateWorkflow(fig.wf, slow);
  // Stage-in (1 MB) and stage-out (two concurrent 1 MB files on dedicated
  // links) each double from 1 s to 2 s.
  EXPECT_NEAR(slowR.makespanSeconds - fast.makespanSeconds, 2.0, 1e-9);
}

}  // namespace
}  // namespace mcsim::engine
