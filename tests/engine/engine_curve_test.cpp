// The exported storage curve must be self-consistent with the scalar
// metrics derived from it, for every mode and workload.
#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::engine {
namespace {

class StorageCurve
    : public ::testing::TestWithParam<std::tuple<DataMode, int>> {};

INSTANTIATE_TEST_SUITE_P(
    ModesAndPools, StorageCurve,
    ::testing::Combine(::testing::Values(DataMode::RemoteIO, DataMode::Regular,
                                         DataMode::DynamicCleanup),
                       ::testing::Values(1, 8, 64)));

TEST_P(StorageCurve, CurveMatchesScalarMetrics) {
  const auto [mode, procs] = GetParam();
  const dag::Workflow wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.processors = procs;
  const auto r = simulateWorkflow(wf, cfg);
  EXPECT_NEAR(r.storageCurve.integralByteSeconds(r.makespanSeconds),
              r.storageByteSeconds, 1.0);
  EXPECT_NEAR(r.storageCurve.peak().value(), r.peakStorageBytes.value(), 1.0);
  // Everything put was eventually removed.
  EXPECT_NEAR(r.storageCurve.current().value(), 0.0, 1.0);
  EXPECT_GT(r.storageCurve.eventCount(), 0u);
}

TEST(StorageCurveShape, RegularIsMonotoneUntilTheEnd) {
  // In regular mode the level never decreases before the final sweep: every
  // negative delta happens at the very last curve timestamp.
  const auto fig = test::makeFigure3Workflow();
  EngineConfig cfg;
  cfg.processors = 2;
  cfg.linkBandwidthBytesPerSec = 1e6;
  const auto r = simulateWorkflow(fig.wf, cfg);
  const auto events = r.storageCurve.sortedEvents();
  ASSERT_FALSE(events.empty());
  const double endTime = events.back().time;
  for (const UsageEvent& e : events)
    if (e.delta < 0.0) EXPECT_DOUBLE_EQ(e.time, endTime);
}

TEST(StorageCurveShape, CleanupReleasesMidRun) {
  const auto fig = test::makeFigure3Workflow();
  EngineConfig cfg;
  cfg.mode = DataMode::DynamicCleanup;
  cfg.processors = 2;
  cfg.linkBandwidthBytesPerSec = 1e6;
  const auto r = simulateWorkflow(fig.wf, cfg);
  const auto events = r.storageCurve.sortedEvents();
  const double endTime = events.back().time;
  bool midRunRelease = false;
  for (const UsageEvent& e : events)
    midRunRelease = midRunRelease || (e.delta < 0.0 && e.time < endTime);
  EXPECT_TRUE(midRunRelease);
}

TEST(StorageCurveShape, RemoteReturnsToZeroBetweenWaves) {
  // Serial remote I/O on Figure 3: the level dips to zero after each task's
  // teardown before the next stage-in begins.
  const auto fig = test::makeFigure3Workflow();
  EngineConfig cfg;
  cfg.mode = DataMode::RemoteIO;
  cfg.processors = 1;
  cfg.linkBandwidthBytesPerSec = 1e6;
  const auto r = simulateWorkflow(fig.wf, cfg);
  const auto events = r.storageCurve.sortedEvents();
  double level = 0.0;
  int zeroTouches = 0;
  double lastTime = -1.0;
  for (const UsageEvent& e : events) {
    if (e.time != lastTime && level == 0.0 && lastTime >= 0.0) ++zeroTouches;
    level += e.delta;
    lastTime = e.time;
  }
  EXPECT_GE(zeroTouches, 6);  // between each of the 7 serial tasks
}

}  // namespace
}  // namespace mcsim::engine
