// Storage-constrained execution and failure injection: the two engine
// features motivated by the paper's §3 (cleanup exists for storage-
// constrained resources) and §8 (reliability).
#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::engine {
namespace {

using test::makeChainWorkflow;
using test::makeFigure3Workflow;

EngineConfig capped(DataMode mode, int procs, double capacityMB) {
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.processors = procs;
  cfg.linkBandwidthBytesPerSec = 1e6;
  cfg.storageCapacityBytes = capacityMB * 1e6;
  return cfg;
}

TEST(StorageCap, UnlimitedByDefault) {
  EngineConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.storageCapacityBytes, 0.0);
}

TEST(StorageCap, GenerousCapChangesNothing) {
  const auto fig = makeFigure3Workflow();
  const auto plain =
      simulateWorkflow(fig.wf, capped(DataMode::DynamicCleanup, 2, 0.0));
  const auto wide =
      simulateWorkflow(fig.wf, capped(DataMode::DynamicCleanup, 2, 1000.0));
  EXPECT_DOUBLE_EQ(plain.makespanSeconds, wide.makespanSeconds);
  EXPECT_EQ(wide.tasksEverBlocked, 0u);
}

TEST(StorageCap, CleanupRunsWhereRegularDeadlocks) {
  // Figure 3 needs 8 MB peak in regular mode but only ~5 MB with cleanup:
  // a 6 MB cap is feasible only for cleanup -- exactly the paper's argument
  // for dynamic cleanup on storage-constrained resources.
  const auto fig = makeFigure3Workflow();
  const auto cleaned =
      simulateWorkflow(fig.wf, capped(DataMode::DynamicCleanup, 1, 6.0));
  EXPECT_EQ(cleaned.tasksExecuted, 7u);
  EXPECT_LE(cleaned.peakStorageBytes.mb(), 6.0 + 1e-9);

  EXPECT_THROW(simulateWorkflow(fig.wf, capped(DataMode::Regular, 1, 6.0)),
               std::runtime_error);
}

TEST(StorageCap, BlockedTasksEventuallyRun) {
  // Four map->reduce pairs: maps emit 3 MB intermediates that their reduces
  // consume into 0.1 MB products.  A 7 MB cap admits two concurrent maps
  // (plus the 0.4 MB of inputs); the rest block until cleanup frees the
  // consumed intermediates — serialization instead of failure.
  dag::Workflow wf("parallel-heavy");
  for (int i = 0; i < 4; ++i) {
    const std::string n = std::to_string(i);
    const dag::FileId in = wf.addFile("in" + n, Bytes::fromMB(0.1));
    const dag::TaskId map = wf.addTask("map" + n, "map", 10.0);
    wf.addInput(map, in);
    const dag::FileId mid = wf.addFile("mid" + n, Bytes::fromMB(3.0));
    wf.addOutput(map, mid);
    const dag::TaskId reduce = wf.addTask("reduce" + n, "reduce", 1.0);
    wf.addInput(reduce, mid);
    const dag::FileId out = wf.addFile("out" + n, Bytes::fromMB(0.1));
    wf.addOutput(reduce, out);
  }
  wf.finalize();
  const auto r =
      simulateWorkflow(wf, capped(DataMode::DynamicCleanup, 8, 7.0));
  EXPECT_EQ(r.tasksExecuted, 8u);
  EXPECT_GT(r.tasksEverBlocked, 0u);
  EXPECT_LE(r.peakStorageBytes.mb(), 7.0 + 1e-9);
  // With 8 processors and no cap this finishes in one 11 s wave; the cap
  // forces at least a second wave of maps.
  EXPECT_GT(r.makespanSeconds, 20.0);
}

TEST(StorageCap, RemoteIoRespectsWorkingSetCap) {
  const auto fig = makeFigure3Workflow();
  // Each remote task's working set is <= 4 MB (t6: 3 in + 1 out); an 8 MB
  // cap forces at most two concurrent tasks.
  const auto r = simulateWorkflow(fig.wf, capped(DataMode::RemoteIO, 4, 8.0));
  EXPECT_EQ(r.tasksExecuted, 7u);
  EXPECT_LE(r.peakStorageBytes.mb(), 8.0 + 1e-9);
}

TEST(StorageCap, MontageCleanupUnderTightCap) {
  // The 1-degree workflow peaks near 1.3 GB in regular mode; cleanup fits
  // in substantially less.
  const auto wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.mode = DataMode::DynamicCleanup;
  cfg.processors = 16;
  const auto unlimited = simulateWorkflow(wf, cfg);
  cfg.storageCapacityBytes = unlimited.peakStorageBytes.value();
  const auto capped = simulateWorkflow(wf, cfg);
  EXPECT_EQ(capped.tasksExecuted, wf.taskCount());
  EXPECT_LE(capped.peakStorageBytes.value(), cfg.storageCapacityBytes + 1e-6);
}

TEST(StorageCap, NegativeCapacityRejected) {
  const auto fig = makeFigure3Workflow();
  EngineConfig cfg;
  cfg.storageCapacityBytes = -1.0;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------

EngineConfig flaky(double probability, std::uint64_t seed = 7) {
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  cfg.processors = 2;
  cfg.linkBandwidthBytesPerSec = 1e6;
  cfg.taskFailureProbability = probability;
  cfg.failureSeed = seed;
  return cfg;
}

TEST(Failures, ZeroRateMeansNoRetries) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, flaky(0.0));
  EXPECT_EQ(r.taskRetries, 0u);
  EXPECT_NEAR(r.cpuBusySeconds, 70.0, 1e-9);
}

TEST(Failures, RetriesBillWastedWork) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, flaky(0.4));
  EXPECT_EQ(r.tasksExecuted, 7u);  // everything still completes
  EXPECT_GT(r.taskRetries, 0u);
  // Each retry re-runs a 10 s task: billed CPU = 70 + 10 x retries.
  EXPECT_NEAR(r.cpuBusySeconds, 70.0 + 10.0 * static_cast<double>(r.taskRetries),
              1e-9);
}

TEST(Failures, DeterministicPerSeed) {
  const auto fig = makeFigure3Workflow();
  const auto a = simulateWorkflow(fig.wf, flaky(0.3, 11));
  const auto b = simulateWorkflow(fig.wf, flaky(0.3, 11));
  EXPECT_EQ(a.taskRetries, b.taskRetries);
  EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
  const auto c = simulateWorkflow(fig.wf, flaky(0.3, 12));
  // A different seed gives a different (but still complete) run.
  EXPECT_EQ(c.tasksExecuted, 7u);
}

TEST(Failures, MakespanGrowsWithRate) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  EngineConfig reliable;
  reliable.processors = 8;
  const auto base = simulateWorkflow(wf, reliable);
  EngineConfig lossy = reliable;
  lossy.taskFailureProbability = 0.2;
  const auto degraded = simulateWorkflow(wf, lossy);
  EXPECT_GT(degraded.makespanSeconds, base.makespanSeconds);
  EXPECT_GT(degraded.taskRetries, 0u);
}

TEST(Failures, RemoteModeRetriesExecutionOnly) {
  const auto fig = makeFigure3Workflow();
  EngineConfig cfg = flaky(0.4);
  cfg.mode = DataMode::RemoteIO;
  const auto r = simulateWorkflow(fig.wf, cfg);
  EXPECT_EQ(r.tasksExecuted, 7u);
  // Transfers are not repeated by a compute retry.
  EXPECT_NEAR(r.bytesIn.mb(), 9.0, 1e-9);
  EXPECT_NEAR(r.bytesOut.mb(), 7.0, 1e-9);
}

TEST(Failures, InvalidProbabilityRejected) {
  const auto fig = makeFigure3Workflow();
  EngineConfig cfg;
  cfg.taskFailureProbability = -0.1;
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
  cfg.taskFailureProbability = 1.0;  // would never terminate
  EXPECT_THROW(simulateWorkflow(fig.wf, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mcsim::engine
