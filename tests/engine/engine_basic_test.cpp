// Engine semantics pinned on the paper's own Figure 3 example (see
// tests/common/fixtures.hpp for the reconstruction).  All tests use a
// 1 MB/s link so byte counts read directly as seconds.
#include "mcsim/engine/engine.hpp"

#include <gtest/gtest.h>

#include "tests/common/fixtures.hpp"

namespace mcsim::engine {
namespace {

using test::makeFigure3Workflow;

EngineConfig config(DataMode mode, int processors) {
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.processors = processors;
  cfg.linkBandwidthBytesPerSec = 1e6;  // 1 MB/s
  return cfg;
}

TEST(EngineBasic, RegularSerialMakespanIsStageInPlusWorkPlusStageOut) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, 1));
  // 1 s stage-in (file a) + 70 s serial compute + 1 s stage-out (g and h
  // transfer concurrently on dedicated links).
  EXPECT_NEAR(r.makespanSeconds, 72.0, 1e-9);
  EXPECT_EQ(r.tasksExecuted, 7u);
  EXPECT_NEAR(r.cpuBusySeconds, 70.0, 1e-9);
}

TEST(EngineBasic, RegularWideMakespanIsCriticalPathBound) {
  const auto fig = makeFigure3Workflow();
  // With >= 3 processors the schedule is stage-in + 4 level-waves + stage-out.
  for (int p : {3, 4, 8}) {
    const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, p));
    EXPECT_NEAR(r.makespanSeconds, 1.0 + 40.0 + 1.0, 1e-9) << p << " procs";
  }
}

TEST(EngineBasic, RegularTransfersAreWorkflowBoundary) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, 2));
  EXPECT_NEAR(r.bytesIn.mb(), 1.0, 1e-9);   // a
  EXPECT_NEAR(r.bytesOut.mb(), 2.0, 1e-9);  // g + h
  EXPECT_EQ(r.transfersIn, 1u);
  EXPECT_EQ(r.transfersOut, 2u);
}

TEST(EngineBasic, CleanupTransfersIdenticalToRegular) {
  // Paper §6: "The amount of data transfer in the Regular and the Cleanup
  // mode are the same since dynamically removing data at the execution site
  // does not affect the data transfers."
  const auto fig = makeFigure3Workflow();
  for (int p : {1, 2, 4}) {
    const auto reg = simulateWorkflow(fig.wf, config(DataMode::Regular, p));
    const auto cln =
        simulateWorkflow(fig.wf, config(DataMode::DynamicCleanup, p));
    EXPECT_DOUBLE_EQ(reg.bytesIn.value(), cln.bytesIn.value());
    EXPECT_DOUBLE_EQ(reg.bytesOut.value(), cln.bytesOut.value());
    EXPECT_DOUBLE_EQ(reg.makespanSeconds, cln.makespanSeconds);
  }
}

TEST(EngineBasic, RemoteIoTransfersCountEveryUse) {
  // Paper §3: in remote I/O every task stages in its inputs and stages out
  // its outputs.  Figure 3: 9 input uses (b is fetched by t1, t2 AND t6 --
  // "the file may be transferred in multiple times"), 7 outputs.
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::RemoteIO, 2));
  EXPECT_NEAR(r.bytesIn.mb(), 9.0, 1e-9);
  EXPECT_NEAR(r.bytesOut.mb(), 7.0, 1e-9);
  EXPECT_EQ(r.transfersIn, 9u);
  EXPECT_EQ(r.transfersOut, 7u);
}

TEST(EngineBasic, RemoteIoSerialMakespan) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::RemoteIO, 1));
  // Six 1-in/1-out tasks: 1+10+1 = 12 s each; t6's three inputs arrive
  // concurrently on dedicated links: 1+10+1 = 12 s as well.
  EXPECT_NEAR(r.makespanSeconds, 7 * 12.0, 1e-9);
  // The processor is held during staging: fully busy for the whole run.
  EXPECT_NEAR(r.processorBusySeconds, r.makespanSeconds, 1e-9);
  EXPECT_NEAR(r.utilization(), 1.0, 1e-9);
  // But CPU *work* is still just the runtimes (usage billing, Fig 10).
  EXPECT_NEAR(r.cpuBusySeconds, 70.0, 1e-9);
}

TEST(EngineBasic, CpuBusyInvariantAcrossModes) {
  const auto fig = makeFigure3Workflow();
  for (DataMode mode : {DataMode::RemoteIO, DataMode::Regular,
                        DataMode::DynamicCleanup}) {
    const auto r = simulateWorkflow(fig.wf, config(mode, 2));
    EXPECT_NEAR(r.cpuBusySeconds, 70.0, 1e-9) << dataModeName(mode);
  }
}

TEST(EngineBasic, StorageOrderingCleanupBelowRegular) {
  const auto fig = makeFigure3Workflow();
  for (int p : {1, 2, 4}) {
    const auto reg = simulateWorkflow(fig.wf, config(DataMode::Regular, p));
    const auto cln =
        simulateWorkflow(fig.wf, config(DataMode::DynamicCleanup, p));
    EXPECT_LT(cln.storageByteSeconds, reg.storageByteSeconds) << p;
    EXPECT_LE(cln.peakStorageBytes, reg.peakStorageBytes) << p;
  }
}

TEST(EngineBasic, SerialStorageByteSecondsExact) {
  // Hand-traced serial (FIFO) schedule: t0,t1,t2,t4,t5,t3,t6 finishing at
  // 11,21,31,41,51,61,71; both stage-out transfers run concurrently and end
  // at 72.  Regular keeps every file to the end; cleanup deletes at last
  // use.
  const auto fig = makeFigure3Workflow();
  const auto reg = simulateWorkflow(fig.wf, config(DataMode::Regular, 1));
  // a:71 b:61 c:51 d:41 e:31 h:21 f:11 g:1 (MB-seconds) = 288.
  EXPECT_NEAR(reg.storageByteSeconds / 1e6, 288.0, 1e-6);
  const auto cln =
      simulateWorkflow(fig.wf, config(DataMode::DynamicCleanup, 1));
  // a:10 b:60 c:30 d:30 e:30 f:10 h:(51->72)=21 g:1 = 192.
  EXPECT_NEAR(cln.storageByteSeconds / 1e6, 192.0, 1e-6);
}

TEST(EngineBasic, RegularPeakIsEveryFile) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, 2));
  EXPECT_NEAR(r.peakStorageBytes.mb(), 8.0, 1e-9);
}

TEST(EngineBasic, CleanupPeakMatchesHandTrace) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::DynamicCleanup, 1));
  // Largest live set: at t4's completion instant its output e lands before
  // its input c is released, so {b, c, d} + e + (c still resident) = 5 MB.
  // Outputs-before-release matches reality: both coexist on disk at the
  // handoff.
  EXPECT_NEAR(r.peakStorageBytes.mb(), 5.0, 1e-9);
}

TEST(EngineBasic, UtilizationSerialRegular) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, 1));
  EXPECT_NEAR(r.utilization(), 70.0 / 72.0, 1e-9);
}

TEST(EngineBasic, UtilizationDropsWithOverProvisioning) {
  const auto fig = makeFigure3Workflow();
  const auto narrow = simulateWorkflow(fig.wf, config(DataMode::Regular, 1));
  const auto wide = simulateWorkflow(fig.wf, config(DataMode::Regular, 8));
  EXPECT_LT(wide.utilization(), narrow.utilization());
}

TEST(EngineBasic, TraceRecordsTimeline) {
  const auto fig = makeFigure3Workflow();
  EngineConfig cfg = config(DataMode::Regular, 2);
  cfg.trace = true;
  const auto r = simulateWorkflow(fig.wf, cfg);
  ASSERT_EQ(r.taskRecords.size(), 7u);
  for (const TaskRecord& rec : r.taskRecords) {
    EXPECT_GE(rec.readyTime, 0.0);
    EXPECT_GE(rec.startTime, rec.readyTime);
    EXPECT_GE(rec.execStart, rec.startTime);
    EXPECT_GE(rec.finishTime, rec.execStart);
  }
  // t0 becomes ready when file a lands at t=1.
  EXPECT_NEAR(r.taskRecords[fig.t0].readyTime, 1.0, 1e-9);
  EXPECT_NEAR(r.taskRecords[fig.t0].finishTime, 11.0, 1e-9);
}

TEST(EngineBasic, NoTraceByDefault) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::Regular, 2));
  EXPECT_TRUE(r.taskRecords.empty());
}

TEST(EngineBasic, DeterministicAcrossRuns) {
  const auto fig = makeFigure3Workflow();
  for (DataMode mode : {DataMode::RemoteIO, DataMode::Regular,
                        DataMode::DynamicCleanup}) {
    const auto a = simulateWorkflow(fig.wf, config(mode, 3));
    const auto b = simulateWorkflow(fig.wf, config(mode, 3));
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.storageByteSeconds, b.storageByteSeconds);
    EXPECT_DOUBLE_EQ(a.bytesIn.value(), b.bytesIn.value());
  }
}

TEST(EngineBasic, ResultEchoesConfig) {
  const auto fig = makeFigure3Workflow();
  const auto r = simulateWorkflow(fig.wf, config(DataMode::DynamicCleanup, 5));
  EXPECT_EQ(r.mode, DataMode::DynamicCleanup);
  EXPECT_EQ(r.processors, 5);
}

TEST(EngineBasic, DataModeNames) {
  EXPECT_STREQ(dataModeName(DataMode::RemoteIO), "remote-io");
  EXPECT_STREQ(dataModeName(DataMode::Regular), "regular");
  EXPECT_STREQ(dataModeName(DataMode::DynamicCleanup), "cleanup");
}

}  // namespace
}  // namespace mcsim::engine
