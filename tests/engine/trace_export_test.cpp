#include "mcsim/engine/trace_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "tests/common/fixtures.hpp"
#include "tests/common/json.hpp"
#include "mcsim/engine/engine.hpp"
#include "mcsim/montage/factory.hpp"

namespace mcsim::engine {
namespace {

ExecutionResult tracedRun(const dag::Workflow& wf, int procs) {
  EngineConfig cfg;
  cfg.processors = procs;
  cfg.linkBandwidthBytesPerSec = 1e6;
  cfg.trace = true;
  return simulateWorkflow(wf, cfg);
}

TEST(TraceCsv, OneRowPerTask) {
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 2);
  std::ostringstream os;
  writeTraceCsv(os, fig.wf, r);
  // Header + 7 tasks.
  std::size_t lines = 0;
  for (char c : os.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 8u);
  EXPECT_NE(os.str().find("task,type,level"), std::string::npos);
  EXPECT_NE(os.str().find("t6,stage3,4"), std::string::npos);
}

TEST(TraceCsv, RequiresTrace) {
  const auto fig = test::makeFigure3Workflow();
  EngineConfig cfg;
  cfg.processors = 2;
  const auto r = simulateWorkflow(fig.wf, cfg);
  std::ostringstream os;
  EXPECT_THROW(writeTraceCsv(os, fig.wf, r), std::invalid_argument);
  EXPECT_THROW(writeChromeTrace(os, fig.wf, r), std::invalid_argument);
}

TEST(ChromeTrace, WellFormedEventArray) {
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 2);
  std::ostringstream os;
  writeChromeTrace(os, fig.wf, r);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.substr(out.size() - 2), "]\n");
  // One complete event per task.
  std::size_t events = 0;
  for (std::size_t pos = out.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = out.find("\"ph\":\"X\"", pos + 1))
    ++events;
  EXPECT_EQ(events, 7u);
  EXPECT_NE(out.find("\"cat\":\"stage1\""), std::string::npos);
}

TEST(ChromeTrace, LaneCountMatchesConcurrency) {
  // With 2 processors the reconstructed lanes must use exactly tids {0, 1}.
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 2);
  std::ostringstream os;
  writeChromeTrace(os, fig.wf, r);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(out.find("\"tid\":1"), std::string::npos);
  EXPECT_EQ(out.find("\"tid\":2"), std::string::npos);
}

TEST(ChromeTrace, SerialRunUsesOneLane) {
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 1);
  std::ostringstream os;
  writeChromeTrace(os, fig.wf, r);
  EXPECT_EQ(os.str().find("\"tid\":1"), std::string::npos);
}

TEST(ChromeTrace, TimesAreMicroseconds) {
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 1);
  std::ostringstream os;
  writeChromeTrace(os, fig.wf, r);
  // t0 starts at 1 s = 1e6 us and runs 10 s = 1e7 us.
  EXPECT_NE(os.str().find("\"ts\":1000000.000000"), std::string::npos);
  EXPECT_NE(os.str().find("\"dur\":10000000.000000"), std::string::npos);
}

TEST(ChromeTrace, ParsesAsCompleteEventArray) {
  const auto fig = test::makeFigure3Workflow();
  const auto r = tracedRun(fig.wf, 2);
  std::ostringstream os;
  writeChromeTrace(os, fig.wf, r);

  const mcsim::test::JsonValue v = mcsim::test::parseJson(os.str());
  ASSERT_TRUE(v.isArray());
  std::size_t complete = 0;
  for (const auto& event : v.asArray()) {
    ASSERT_TRUE(event.isObject());
    if (event.at("ph").asString() != "X") continue;
    ++complete;
    EXPECT_TRUE(event.has("name"));
    EXPECT_TRUE(event.has("cat"));
    EXPECT_GE(event.at("ts").asNumber(), 0.0);
    EXPECT_GT(event.at("dur").asNumber(), 0.0);
    EXPECT_GE(event.at("tid").asNumber(), 0.0);
  }
  EXPECT_EQ(complete, fig.wf.taskCount());
}

TEST(ChromeTrace, LanesNeverOverlap) {
  // A lane is a processor: within one tid, task intervals must be disjoint.
  const auto wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.processors = 8;
  cfg.trace = true;
  const auto r = simulateWorkflow(wf, cfg);
  std::ostringstream os;
  writeChromeTrace(os, wf, r);

  const mcsim::test::JsonValue v = mcsim::test::parseJson(os.str());
  std::map<int, std::vector<std::pair<double, double>>> lanes;
  for (const auto& event : v.asArray()) {
    if (event.at("ph").asString() != "X") continue;
    lanes[static_cast<int>(event.at("tid").asNumber())].emplace_back(
        event.at("ts").asNumber(), event.at("dur").asNumber());
  }
  ASSERT_LE(lanes.size(), 8u);
  for (auto& [tid, intervals] : lanes) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first,
                intervals[i - 1].first + intervals[i - 1].second - 1e-6)
          << "lane " << tid << " overlaps at interval " << i;
    }
  }
}

TEST(TraceCsv, EveryRowHasHeaderArity) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.processors = 8;
  cfg.trace = true;
  const auto r = simulateWorkflow(wf, cfg);
  std::ostringstream os;
  writeTraceCsv(os, wf, r);

  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const std::size_t columns =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) +
                  1,
              columns)
        << line;
    ++rows;
  }
  EXPECT_EQ(rows, wf.taskCount());
}

TEST(ChromeTrace, MontageScaleSmokeTest) {
  const auto wf = montage::buildMontageWorkflow(1.0);
  EngineConfig cfg;
  cfg.processors = 16;
  cfg.trace = true;
  const auto r = simulateWorkflow(wf, cfg);
  std::ostringstream os;
  writeChromeTrace(os, wf, r);
  EXPECT_GT(os.str().size(), 203u * 50u);  // every task serialized
}

}  // namespace
}  // namespace mcsim::engine
