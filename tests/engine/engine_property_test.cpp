// Property-based engine tests over seeded random DAGs: the invariants that
// must hold for *any* workflow, not just Montage.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "mcsim/dag/algorithms.hpp"
#include "mcsim/dag/random_dag.hpp"
#include "mcsim/engine/engine.hpp"

namespace mcsim::engine {
namespace {

class RandomDagProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    wf_ = std::make_unique<dag::Workflow>(dag::makeRandomWorkflow(GetParam()));
  }
  ExecutionResult run(DataMode mode, int processors) {
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.processors = processors;
    cfg.linkBandwidthBytesPerSec = 1.25e6;
    return simulateWorkflow(*wf_, cfg);
  }
  std::unique_ptr<dag::Workflow> wf_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperties,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST_P(RandomDagProperties, AllTasksExecuteEveryMode) {
  for (DataMode mode : {DataMode::RemoteIO, DataMode::Regular,
                        DataMode::DynamicCleanup}) {
    const auto r = run(mode, 4);
    EXPECT_EQ(r.tasksExecuted, wf_->taskCount()) << dataModeName(mode);
    EXPECT_NEAR(r.cpuBusySeconds, wf_->totalRuntimeSeconds(), 1e-6)
        << dataModeName(mode);
  }
}

TEST_P(RandomDagProperties, MakespanAboveLowerBounds) {
  for (int p : {1, 3, 16}) {
    const auto r = run(DataMode::Regular, p);
    EXPECT_GE(r.makespanSeconds, dag::criticalPathSeconds(*wf_) - 1e-6);
    EXPECT_GE(r.makespanSeconds, wf_->totalRuntimeSeconds() / p - 1e-6);
  }
}

TEST_P(RandomDagProperties, SerialRegularMakespanBounds) {
  const auto r = run(DataMode::Regular, 1);
  const double b = 1.25e6;
  const double inTime = wf_->externalInputBytes().value() / b;
  const double outTime = wf_->workflowOutputBytes().value() / b;
  const double work = wf_->totalRuntimeSeconds();
  // Dedicated links: stage-out takes max(output)/B, stage-in at most sum/B.
  double maxOut = 0.0;
  for (dag::FileId f : wf_->workflowOutputs())
    maxOut = std::max(maxOut, wf_->file(f).size.value());
  EXPECT_GE(r.makespanSeconds, work + maxOut / b - 1e-6);
  EXPECT_LE(r.makespanSeconds, inTime + work + outTime + 1e-6);
}

TEST_P(RandomDagProperties, CleanupStorageNeverExceedsRegular) {
  for (int p : {1, 4}) {
    const auto reg = run(DataMode::Regular, p);
    const auto cln = run(DataMode::DynamicCleanup, p);
    EXPECT_LE(cln.storageByteSeconds, reg.storageByteSeconds + 1e-6) << p;
    EXPECT_LE(cln.peakStorageBytes.value(),
              reg.peakStorageBytes.value() + 1e-6)
        << p;
  }
}

TEST_P(RandomDagProperties, CleanupTransfersEqualRegular) {
  const auto reg = run(DataMode::Regular, 4);
  const auto cln = run(DataMode::DynamicCleanup, 4);
  EXPECT_DOUBLE_EQ(reg.bytesIn.value(), cln.bytesIn.value());
  EXPECT_DOUBLE_EQ(reg.bytesOut.value(), cln.bytesOut.value());
}

TEST_P(RandomDagProperties, RegularPeakIsTotalBytes) {
  // In regular mode nothing is deleted before the final sweep, so the peak
  // is every file ever resident.
  const auto reg = run(DataMode::Regular, 4);
  EXPECT_NEAR(reg.peakStorageBytes.value(), wf_->totalFileBytes().value(),
              1.0);
}

TEST_P(RandomDagProperties, RemoteBytesAreUseCounts) {
  double expectedIn = 0.0, expectedOut = 0.0;
  for (const dag::Task& t : wf_->tasks()) {
    for (dag::FileId f : t.inputs) expectedIn += wf_->file(f).size.value();
    for (dag::FileId f : t.outputs) expectedOut += wf_->file(f).size.value();
  }
  const auto r = run(DataMode::RemoteIO, 4);
  EXPECT_NEAR(r.bytesIn.value(), expectedIn, 1.0);
  EXPECT_NEAR(r.bytesOut.value(), expectedOut, 1.0);
  EXPECT_GE(r.bytesIn.value(), wf_->externalInputBytes().value() - 1.0);
  EXPECT_GE(r.bytesOut.value(), wf_->workflowOutputBytes().value() - 1.0);
}

TEST_P(RandomDagProperties, RemoteStorageIsTransient) {
  // Remote I/O deletes everything per task: nothing is resident at the end
  // and the peak is bounded by the largest concurrent working set.
  const auto r = run(DataMode::RemoteIO, 2);
  EXPECT_GT(r.storageByteSeconds, 0.0);
  // With 2 processors at most two tasks' working sets coexist.
  double biggest = 0.0, second = 0.0;
  for (const dag::Task& t : wf_->tasks()) {
    double set = 0.0;
    for (dag::FileId f : t.inputs) set += wf_->file(f).size.value();
    for (dag::FileId f : t.outputs) set += wf_->file(f).size.value();
    if (set > biggest) {
      second = biggest;
      biggest = set;
    } else if (set > second) {
      second = set;
    }
  }
  EXPECT_LE(r.peakStorageBytes.value(), biggest + second + 1.0);
}

TEST_P(RandomDagProperties, ProcessorBusyNeverExceedsProvisioned) {
  for (DataMode mode : {DataMode::RemoteIO, DataMode::Regular}) {
    const auto r = run(mode, 3);
    EXPECT_LE(r.processorBusySeconds, 3.0 * r.makespanSeconds + 1e-6);
    EXPECT_GE(r.processorBusySeconds, r.cpuBusySeconds - 1e-6);
    EXPECT_GT(r.utilization(), 0.0);
    EXPECT_LE(r.utilization(), 1.0 + 1e-9);
  }
}

TEST_P(RandomDagProperties, WiderPoolNeverSlowerThanSerial) {
  const auto serial = run(DataMode::Regular, 1);
  const auto wide = run(DataMode::Regular, 64);
  EXPECT_LE(wide.makespanSeconds, serial.makespanSeconds + 1e-6);
}

TEST_P(RandomDagProperties, SchedulerPoliciesBothComplete) {
  EngineConfig cfg;
  cfg.mode = DataMode::Regular;
  cfg.processors = 2;
  cfg.scheduler = SchedulerPolicy::CriticalPathFirst;
  const auto cp = simulateWorkflow(*wf_, cfg);
  EXPECT_EQ(cp.tasksExecuted, wf_->taskCount());
  EXPECT_GE(cp.makespanSeconds, dag::criticalPathSeconds(*wf_) - 1e-6);
}

}  // namespace
}  // namespace mcsim::engine
