// Quickstart: build the paper's 1-degree Montage workflow, simulate one run
// on an 8-processor cloud allocation, and price it with the 2008 Amazon fee
// structure.
//
//   ./examples/quickstart [degrees] [processors] [telemetry-dir]
//
// With a third argument, the run is observed end to end: events.jsonl,
// metrics.prom and report.json land in that directory.
#include <cstdlib>
#include <iostream>
#include <optional>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  const double degrees = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int processors = argc > 2 ? std::atoi(argv[2]) : 8;

  // 1. Build a workload.  The Montage factory generates the paper's
  //    calibrated workflows; any DAG built via dag::Workflow works the same.
  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  std::cout << "workflow: " << wf.name() << " (" << wf.taskCount()
            << " tasks, " << wf.fileCount() << " files, "
            << formatBytes(wf.totalFileBytes()) << " total data, CCR "
            << wf.ccr(montage::kReferenceBandwidthBytesPerSec) << ")\n\n";

  // 2. Configure the execution: data-management mode, processors, link.
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;  // the paper's cheapest mode
  cfg.processors = processors;
  cfg.trace = true;

  // Optional: observe the run.  One sink handed to the engine captures
  // every event; finish() below turns them into the on-disk artifacts.
  std::optional<obs::TelemetrySession> telemetry;
  if (argc > 3) {
    telemetry.emplace(obs::TelemetryOptions{argv[3]});
    cfg.observer = telemetry->sink();
    cfg.samplePeriodSeconds = 60.0;
  }

  // 3. Simulate.
  const engine::ExecutionResult result = engine::simulateWorkflow(wf, cfg);
  std::cout << engine::summarize(wf, result) << "\n\n";
  engine::printLevelSummary(std::cout, wf, result);

  // 4. Price it, both ways the paper bills CPU.
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  const auto provisioned = engine::computeCost(
      result, amazon, cloud::CpuBillingMode::Provisioned);
  const auto usage =
      engine::computeCost(result, amazon, cloud::CpuBillingMode::Usage);

  std::cout << "\ncosts (Amazon 2008 fees):\n";
  Table t({"billing", "cpu", "storage", "in", "out", "total"});
  t.addRow({"provisioned (Q1)", analysis::moneyCell(provisioned.cpu),
            analysis::moneyCell(provisioned.storage),
            analysis::moneyCell(provisioned.transferIn),
            analysis::moneyCell(provisioned.transferOut),
            analysis::moneyCell(provisioned.total())});
  t.addRow({"usage (Q2)", analysis::moneyCell(usage.cpu),
            analysis::moneyCell(usage.storage),
            analysis::moneyCell(usage.transferIn),
            analysis::moneyCell(usage.transferOut),
            analysis::moneyCell(usage.total())});
  t.print(std::cout);

  if (telemetry) {
    const obs::RunReport report = telemetry->finish(
        wf, result, amazon, cloud::CpuBillingMode::Provisioned);
    std::cout << "\ntelemetry written to " << argv[3] << " ("
              << report.byTask.size() << " tasks attributed, report total "
              << formatMoney(report.totals.total()) << ")\n";
  }
  return 0;
}
