// Fault-injection tour: what unreliable processors cost.
//
// Runs the paper's 1-degree Montage mosaic three ways:
//   1. fault-free — the paper's own numbers,
//   2. under a spot-style crash model (exponential MTBF) with exponential
//      backoff retries, watching the crash/retry telemetry stream,
//   3. the cost-vs-MTBF reliability sweep across all three data-management
//      modes — the experiment the paper's §8 leaves open.
//
// Every run is seeded, so this program prints the same numbers every time.
//
//   ./examples/fault_injection_tour [degrees] [mtbf-seconds]
#include <cstdlib>
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  const double degrees = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double mtbf = argc > 2 ? std::atof(argv[2]) : 3600.0;

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const cloud::Pricing pricing = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

  // 1. The fault-free baseline.
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::RemoteIO;
  cfg.processors = 8;
  const engine::ExecutionResult clean = engine::simulateWorkflow(wf, cfg);
  const Money cleanTotal =
      engine::computeCost(clean, pricing, cloud::CpuBillingMode::Usage)
          .total();
  std::cout << "fault-free: " << formatDuration(clean.makespanSeconds)
            << " makespan, " << formatMoney(cleanTotal) << " total\n\n";

  // 2. The same run on processors with the given MTBF.  A ring buffer
  // retains the fault events; crashes preempt in-flight work, remote-mode
  // retries re-stage (and re-bill) their inputs.
  obs::RingBufferSink recorder(4096);
  cfg.observer = &recorder;
  cfg.faults.processor.mtbfSeconds = mtbf;
  cfg.faults.retry.kind = faults::RetryPolicyKind::ExponentialBackoff;
  cfg.faults.retry.maxRetries = 5;
  cfg.faults.retry.delaySeconds = 10.0;
  cfg.faults.retry.jitterFraction = 0.25;
  cfg.faults.seed = 42;
  const engine::ExecutionResult faulty = engine::simulateWorkflow(wf, cfg);
  const Money faultyTotal =
      engine::computeCost(faulty, pricing, cloud::CpuBillingMode::Usage)
          .total();

  std::cout << "with MTBF " << formatDuration(mtbf) << ": "
            << faulty.processorCrashes << " crashes, " << faulty.taskRetries
            << " retries, " << formatDuration(faulty.wastedCpuSeconds)
            << " cpu wasted, " << formatBytes(faulty.bytesIn)
            << " staged in (vs " << formatBytes(clean.bytesIn)
            << " fault-free)\n";
  std::cout << "  makespan " << formatDuration(faulty.makespanSeconds)
            << ", total " << formatMoney(faultyTotal) << " ("
            << (faulty.completed() ? "completed" : "INCOMPLETE") << ")\n";
  std::cout << "  recorder saw " << recorder.countOf<obs::ProcessorCrashed>()
            << " ProcessorCrashed and "
            << recorder.countOf<obs::TaskRetryScheduled>()
            << " TaskRetryScheduled events\n\n";

  // 3. The reliability experiment: cost vs. MTBF, all three data modes.
  analysis::ReliabilityConfig rc;
  rc.mtbfSeconds = {14400.0, 3600.0, 900.0};
  rc.retry = cfg.faults.retry;
  rc.faultSeed = 42;
  rc.processorOverride = 8;
  std::cout << "cost vs. MTBF (8 processors, usage billing):\n";
  analysis::reliabilityTable(analysis::reliabilitySweep(wf, pricing, rc))
      .print(std::cout);
  return 0;
}
