// Custom workflows through the DAX pipeline: write a workflow to XML, load
// it back (as the paper's simulator loaded mDAG output), compare the three
// data-management modes, and render an execution Gantt chart.
//
//   ./examples/custom_workflow_dax [path-to-dax]
// With no argument, a demo genomics-style pipeline is generated first.
#include <fstream>
#include <iostream>

#include "mcsim/mcsim.hpp"

namespace {

mcsim::dag::Workflow makeDemoPipeline() {
  using namespace mcsim;
  // An alignment-then-variant-call shaped pipeline: one big reference, many
  // sample shards, a joint-call fan-in.
  dag::Workflow wf("variant-calling");
  const dag::FileId reference = wf.addFile("reference.fa", Bytes::fromGB(3.0));
  const dag::TaskId merge = wf.addTask("joint_call", "joint", 1800.0);
  for (int s = 0; s < 12; ++s) {
    const dag::FileId reads =
        wf.addFile("sample" + std::to_string(s) + ".fastq", Bytes::fromGB(0.8));
    const dag::TaskId align =
        wf.addTask("align_" + std::to_string(s), "align", 1200.0);
    wf.addInput(align, reads);
    wf.addInput(align, reference);
    const dag::FileId bam =
        wf.addFile("sample" + std::to_string(s) + ".bam", Bytes::fromGB(1.1));
    wf.addOutput(align, bam);
    const dag::TaskId call =
        wf.addTask("call_" + std::to_string(s), "call", 700.0);
    wf.addInput(call, bam);
    const dag::FileId gvcf =
        wf.addFile("sample" + std::to_string(s) + ".gvcf", Bytes::fromMB(200.0));
    wf.addOutput(call, gvcf);
    wf.addInput(merge, gvcf);
  }
  const dag::FileId vcf = wf.addFile("cohort.vcf", Bytes::fromGB(1.5));
  wf.addOutput(merge, vcf);
  wf.finalize();
  return wf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcsim;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "demo_pipeline.dax";
    dag::writeDaxFile(makeDemoPipeline(), path);
    std::cout << "no DAX given; wrote demo pipeline to " << path << "\n";
  }

  const dag::Workflow wf = dag::readDaxFile(path);
  std::cout << "loaded " << wf.name() << ": " << wf.taskCount() << " tasks, "
            << wf.fileCount() << " files, " << wf.levelCount() << " levels, "
            << formatBytes(wf.totalFileBytes()) << " of data\n";

  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");
  std::cout << sectionBanner("data-management mode comparison (paper §6 Q2a)");
  analysis::dataModeTable(
      analysis::dataModeComparison(wf, amazon, analysis::DataModeComparisonConfig{}))
      .print(std::cout);

  // Trace a cleanup-mode run and show where the time goes.
  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;
  cfg.processors = 8;
  cfg.trace = true;
  const auto result = engine::simulateWorkflow(wf, cfg);
  std::cout << sectionBanner("execution timeline, cleanup mode, 8 processors");
  engine::printGantt(std::cout, wf, result, 30, 64);
  std::cout << "\n" << engine::summarize(wf, result) << "\n";
  return 0;
}
