// Sky-survey service — Questions 2b and 3 played forward as a month in the
// life of a mosaic service on the cloud.
//
// A Poisson stream of mosaic requests (mixed 1/2/4-degree sizes; 70% target
// popular regions like Orion that repeat) hits the service.  Three
// operating policies are billed against the same request stream:
//   * recompute      — every request runs the workflow, staging the input
//                      images from the project's own archive each time,
//   * archive        — the 12 TB 2MASS archive lives in cloud storage
//                      ($1,800/month, Question 2b), recompute every mosaic,
//   * archive+cache  — additionally, finished mosaics of popular regions
//                      are stored and repeat requests served directly
//                      (Question 3's advice).
//
//   ./examples/sky_survey_service [--rate N] [--months M] [--seed S]
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  ArgParser args({"rate", "months", "seed"}, {});
  args.parse(argc - 1, argv + 1);

  analysis::ServiceWorkloadParams params;
  params.requestsPerDay = args.numberOr("rate", 40.0);
  params.horizonSeconds = args.numberOr("months", 1.0) * kSecondsPerMonth;
  params.seed = static_cast<std::uint64_t>(args.intOr("seed", 42));

  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

  // Per-request costs come straight from the simulator: one Regular-mode run
  // per mosaic size (usage billing, full parallelism).
  std::vector<analysis::RequestProfile> profiles;
  const double weights[] = {0.5, 0.3, 0.2};  // most requests are small
  int i = 0;
  for (double deg : {1.0, 2.0, 4.0}) {
    const auto p = montage::paramsForDegrees(deg);
    analysis::RequestProfile profile = analysis::profileFromWorkflow(
        montage::buildMontageWorkflow(p), p.mosaicBytes, amazon);
    profile.weight = weights[i++];
    profiles.push_back(profile);
  }

  std::cout << "per-request costs (simulated):\n";
  Table costs({"mosaic", "on demand", "pre-staged", "served from cache"});
  for (const auto& p : profiles)
    costs.addRow({p.name, analysis::moneyCell(p.costOnDemand),
                  analysis::moneyCell(p.costPreStaged),
                  analysis::moneyCell(p.costServeStored)});
  costs.print(std::cout);

  const auto report = analysis::simulateServiceMonth(
      profiles, Bytes::fromTB(12.0), amazon, params);

  std::cout << "\nsimulated " << params.horizonSeconds / kSecondsPerDay
            << " days: " << report.requestCount << " requests ("
            << params.requestsPerDay << "/day), " << report.cacheHits
            << " cache hits, " << formatBytes(report.cachedProductBytes)
            << " of mosaics cached\n";

  std::cout << sectionBanner("bill by operating policy");
  Table bill({"policy", "total", "per request"});
  for (const analysis::PolicyCost* policy :
       {&report.recompute, &report.archiveInCloud, &report.archivePlusCache}) {
    bill.addRow({policy->policy, formatMoney(policy->total),
                 analysis::moneyCell(policy->perRequest(report.requestCount))});
  }
  bill.print(std::cout);

  std::cout << "\nCheapest: " << report.best().policy
            << ".  The paper's break-even (Q2b) is ~18,000 requests/month "
               "for the archive alone; caching popular products (Q3) moves "
               "the threshold because a stored mosaic costs only its "
               "transfer-out to serve.\n";
  return 0;
}
