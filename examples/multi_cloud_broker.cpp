// Multi-cloud broker — the paper's closing prediction as a tool.  "As the
// field matures, we expect to see a more diverse selection of fees...
// applications will have more options to consider and more execution and
// provisioning plans to develop."  Given a mosaic size and a monthly
// request volume, ranks every (compute provider, archive provider) plan.
//
//   ./examples/multi_cloud_broker [--degrees D] [--volume requests-per-month]
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  ArgParser args({"degrees", "volume"}, {});
  args.parse(argc - 1, argv + 1);
  const double degrees = args.numberOr("degrees", 2.0);
  const double volume = args.numberOr("volume", 18000.0);

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const analysis::RequestShape shape = analysis::shapeFromWorkflow(wf);
  std::cout << "request shape from " << wf.name() << ": "
            << formatDuration(shape.cpuSeconds) << " CPU, "
            << formatBytes(shape.inputBytes) << " in, "
            << formatBytes(shape.productBytes) << " product\n";

  const std::vector<cloud::Pricing> market = {
      cloud::Pricing::amazon2008(),
      cloud::Pricing::computeDiscountProvider(),
      cloud::Pricing::storageHeavyProvider(),
  };
  std::cout << "\nprovider market:\n";
  Table fees({"provider", "$/CPU-h", "$/GB-month", "$/GB in", "$/GB out"});
  for (const auto& p : market)
    fees.addRow({p.providerName, analysis::moneyCell(p.cpuPerHour),
                 analysis::moneyCell(p.storagePerGBMonth),
                 analysis::moneyCell(p.transferInPerGB),
                 analysis::moneyCell(p.transferOutPerGB)});
  fees.print(std::cout);

  const auto plans = analysis::comparePlacements(shape, Bytes::fromTB(12.0),
                                                 volume, market);
  std::cout << sectionBanner("placement plans, cheapest first (" +
                             std::to_string(static_cast<long>(volume)) +
                             " requests/month, 12 TB archive)");
  Table t({"#", "compute", "archive", "monthly total", "vs best"});
  for (std::size_t i = 0; i < plans.size(); ++i) {
    char delta[32];
    std::snprintf(delta, sizeof delta, "+%.1f%%",
                  100.0 * (plans[i].monthlyTotal - plans[0].monthlyTotal)
                              .value() /
                      plans[0].monthlyTotal.value());
    t.addRow({std::to_string(i + 1), plans[i].computeProvider,
              plans[i].archiveProvider, formatMoney(plans[i].monthlyTotal),
              i == 0 ? "best" : delta});
  }
  t.print(std::cout);

  const auto& best = plans[0];
  std::cout << "\nRecommendation: compute on " << best.computeProvider
            << ", archive on " << best.archiveProvider
            << (best.colocated ? " (co-located: intra-provider data access "
                                 "is free, as with EC2/S3)."
                               : " (split placement: the archive savings "
                                 "outweigh per-request cross-provider "
                                 "transfer).")
            << "\n";
  return 0;
}
