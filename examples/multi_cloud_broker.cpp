// Multi-cloud broker — the paper's closing prediction as a tool.  "As the
// field matures, we expect to see a more diverse selection of fees...
// applications will have more options to consider and more execution and
// provisioning plans to develop."
//
// This walkthrough drives the provider catalog end to end:
//   1. inspect the market (every catalog profile, multi-generation SKUs),
//   2. run the placement optimizer over provider x instance x storage
//      class x data mode x data placement — spot SKUs and provider-hosted
//      archives included — and read the cost-makespan Pareto frontier,
//   3. re-rank the classic monthly-service plans (comparePlacements) with
//      fee views pulled from the same catalog.
//
//   ./examples/multi_cloud_broker [--degrees D] [--volume requests-per-month]
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  ArgParser args({"degrees", "volume"}, {});
  args.parse(argc - 1, argv + 1);
  const double degrees = args.numberOr("degrees", 2.0);
  const double volume = args.numberOr("volume", 18000.0);

  // -- 1. the market ---------------------------------------------------------
  const cloud::ProviderCatalog& catalog = cloud::ProviderCatalog::builtin();
  std::cout << "provider market (" << catalog.size() << " profiles):\n";
  Table fees({"provider", "instances", "fastest", "storage tiers",
              "cheapest $/GB-month"});
  for (const auto& [name, profile] : catalog.profiles()) {
    const cloud::InstanceType* fastest = &profile.defaultInstance();
    const cloud::StorageClass* cheapest = &profile.defaultStorageClass();
    for (const auto& sku : profile.instanceTypes)
      if (sku.speedFactor > fastest->speedFactor) fastest = &sku;
    for (const auto& cls : profile.storageClasses)
      if (cls.perGBMonth < cheapest->perGBMonth) cheapest = &cls;
    char rate[32];
    std::snprintf(rate, sizeof rate, "$%.4g", cheapest->perGBMonth.value());
    fees.addRow({name, std::to_string(profile.instanceTypes.size()),
                 fastest->name, std::to_string(profile.storageClasses.size()),
                 rate});
  }
  fees.print(std::cout);

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const analysis::RequestShape shape = analysis::shapeFromWorkflow(wf);
  std::cout << "\nrequest shape from " << wf.name() << ": "
            << formatDuration(shape.cpuSeconds) << " CPU, "
            << formatBytes(shape.inputBytes) << " in, "
            << formatBytes(shape.productBytes) << " product\n";

  // -- 2. the optimizer ------------------------------------------------------
  // The full search: every provider, every SKU (spot variants included),
  // every storage tier, all three data modes, inputs optionally hosted on
  // provider storage with their holding cost amortized over the request
  // volume.  One simulation per distinct (mode, instance speed); every
  // placement priced analytically from those runs.
  analysis::OptimizeConfig config;
  config.useSpot = true;
  config.sweepArchiveHosting = true;
  config.requestsPerMonth = volume;
  const analysis::OptimizeResult result =
      analysis::optimizePlacement(wf, catalog, config);

  std::cout << sectionBanner("placement optimizer: " +
                             std::to_string(result.candidates) +
                             " candidates from " +
                             std::to_string(result.simulations) +
                             " simulations");
  analysis::optimizeTable(result, 10).print(std::cout);
  std::cout << "\nrecommendation: "
            << analysis::describeCandidate(result.best()) << "\n";

  std::cout << "\ncost-makespan frontier (pay more only to finish faster):\n";
  for (const analysis::PlacementCandidate& c : result.ranked) {
    if (!c.onFrontier) continue;
    std::cout << "  " << formatMoney(c.cost.total()) << "  "
              << formatDuration(c.makespanSeconds) << "  "
              << c.assignment.computeProvider << "/"
              << c.assignment.instanceType
              << (c.assignment.spot ? " (spot)" : "") << "\n";
  }

  // -- 3. the monthly-service view ------------------------------------------
  // The original comparePlacements arithmetic, now fed from the catalog:
  // a 12 TB archive served at `volume` requests/month, every (compute,
  // archive) provider pairing.
  std::vector<cloud::Pricing> market;
  for (const std::string& name : catalog.names())
    market.push_back(catalog.pricing(name));
  const auto plans = analysis::comparePlacements(shape, Bytes::fromTB(12.0),
                                                 volume, market);
  std::cout << sectionBanner("monthly service plans, cheapest first (" +
                             std::to_string(static_cast<long>(volume)) +
                             " requests/month, 12 TB archive)");
  Table t({"#", "compute", "archive", "monthly total", "vs best"});
  const std::size_t shown = std::min<std::size_t>(plans.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    char delta[32];
    std::snprintf(delta, sizeof delta, "+%.1f%%",
                  100.0 * (plans[i].monthlyTotal - plans[0].monthlyTotal)
                              .value() /
                      plans[0].monthlyTotal.value());
    t.addRow({std::to_string(i + 1), plans[i].computeProvider,
              plans[i].archiveProvider, formatMoney(plans[i].monthlyTotal),
              i == 0 ? "best" : delta});
  }
  t.print(std::cout);

  const auto& best = plans[0];
  std::cout << "\nRecommendation: compute on " << best.computeProvider
            << ", archive on " << best.archiveProvider
            << (best.colocated ? " (co-located: intra-provider data access "
                                 "is free, as with EC2/S3)."
                               : " (split placement: the archive savings "
                                 "outweigh per-request cross-provider "
                                 "transfer).")
            << "\n";
  return 0;
}
