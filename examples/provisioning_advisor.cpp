// Provisioning advisor — the paper's Question 1 as a tool.  An application
// that "sometimes needs more resources than it has" reaches out to the
// cloud; given a mosaic size, a deadline and a budget it answers: how many
// processors should I provision?
//
//   ./examples/provisioning_advisor [degrees] [deadline-hours] [budget-usd]
#include <cstdlib>
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  const double degrees = argc > 1 ? std::atof(argv[1]) : 4.0;
  analysis::PlannerGoal goal;
  if (argc > 2) goal.deadlineSeconds = std::atof(argv[2]) * kSecondsPerHour;
  if (argc > 3) goal.budget = Money(std::atof(argv[3]));

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);
  const cloud::Pricing amazon = cloud::ProviderCatalog::builtin().pricing("amazon-2008");

  std::cout << "planning a " << degrees << "-degree mosaic ("
            << wf.taskCount() << " tasks)\n";
  if (goal.deadlineSeconds < 1e300)
    std::cout << "  deadline: " << formatDuration(goal.deadlineSeconds) << "\n";
  if (goal.budget.value() < 1e300)
    std::cout << "  budget:   " << formatMoney(goal.budget) << "\n";

  const analysis::Recommendation rec =
      analysis::recommendProvisioning(wf, amazon, goal);

  std::cout << "\n" << (rec.feasible ? "RECOMMENDATION: " : "INFEASIBLE: ")
            << rec.rationale << "\n";

  std::cout << sectionBanner("cost/time frontier (Pareto-optimal sweep points)");
  Table t({"procs", "makespan", "total cost", "utilization"});
  for (const auto& p : rec.frontier) {
    char util[16];
    std::snprintf(util, sizeof util, "%.0f%%", p.utilization * 100.0);
    t.addRow({std::to_string(p.processors), formatDuration(p.makespanSeconds),
              analysis::moneyCell(p.totalCost), util});
  }
  t.print(std::cout);

  std::cout << "\nThe paper's observation holds: cost rises and time falls "
               "monotonically with processors, so the right answer is the "
               "cheapest point that meets your deadline.\n";
  return 0;
}
