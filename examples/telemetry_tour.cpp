// Telemetry tour: what the obs layer can tell you about a run without
// writing a single file.
//
// Simulates the paper's 1-degree Montage mosaic under dynamic cleanup and
// observes it three ways at once through one fan-out sink:
//   * a RingBufferSink flight recorder holding the last events of the run,
//   * a MetricsSink feeding a registry (printed as Prometheus text),
//   * a ReportBuilder attributing every cent to a task / level / resource.
//
//   ./examples/telemetry_tour [degrees] [processors]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  const double degrees = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int processors = argc > 2 ? std::atoi(argv[2]) : 8;

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);

  // One sink fans out to three consumers; the engine sees a single Sink*.
  obs::RingBufferSink recorder(512);
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics(registry);
  obs::ReportBuilder reportBuilder;
  obs::FanOutSink fan({&recorder, &metrics, &reportBuilder});

  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;
  cfg.processors = processors;
  cfg.observer = &fan;
  cfg.samplePeriodSeconds = 120.0;

  const engine::ExecutionResult result = engine::simulateWorkflow(wf, cfg);

  // 1. The flight recorder: the tail of the event stream, typed.
  std::cout << "flight recorder: " << recorder.size() << " events retained, "
            << recorder.dropped() << " older ones dropped\n";
  std::cout << "  of which " << recorder.countOf<obs::TaskFinished>()
            << " task completions, "
            << recorder.countOf<obs::TransferFinished>()
            << " finished transfers, "
            << recorder.countOf<obs::FileCleanupDeleted>()
            << " cleanup deletions\n\n";

  // 2. The metrics registry, in the text form Prometheus scrapes.
  std::cout << "metrics exposition:\n";
  registry.writePrometheus(std::cout);

  // 3. Cost attribution: who spent the money?
  const obs::RunReport report = reportBuilder.build(
      wf, result, cloud::Pricing::amazon2008(),
      cloud::CpuBillingMode::Usage);

  std::cout << "\ncost by level (usage billing, level 0 = staging):\n";
  Table levels({"level", "tasks", "cpu", "storage", "in", "out", "total"});
  for (const obs::LevelCost& l : report.byLevel) {
    levels.addRow({std::to_string(l.level), std::to_string(l.tasks),
                   analysis::moneyCell(l.cost.cpu),
                   analysis::moneyCell(l.cost.storage),
                   analysis::moneyCell(l.cost.transferIn),
                   analysis::moneyCell(l.cost.transferOut),
                   analysis::moneyCell(l.cost.total())});
  }
  levels.print(std::cout);

  std::vector<obs::TaskCost> ranked = report.byTask;
  std::sort(ranked.begin(), ranked.end(),
            [](const obs::TaskCost& a, const obs::TaskCost& b) {
              return a.cost.total().value() > b.cost.total().value();
            });
  if (ranked.size() > 5) ranked.resize(5);
  std::cout << "\nmost expensive tasks:\n";
  Table top({"task", "type", "level", "total"});
  for (const obs::TaskCost& t : ranked)
    top.addRow({t.name, t.type, std::to_string(t.level),
                analysis::moneyCell(t.cost.total())});
  top.print(std::cout);

  std::cout << "\nreport total " << formatMoney(report.totals.total())
            << " (engine total "
            << formatMoney(engine::computeCost(result,
                                               cloud::Pricing::amazon2008(),
                                               cloud::CpuBillingMode::Usage)
                               .total())
            << ") -- identical by construction\n";
  return 0;
}
