// Telemetry tour: what the obs layer can tell you about a run.
//
// Simulates the paper's 1-degree Montage mosaic under dynamic cleanup and
// observes it four ways at once through one fan-out sink:
//   * a RingBufferSink flight recorder holding the last events of the run,
//   * a MetricsSink feeding a registry (printed as Prometheus text),
//   * a ReportBuilder attributing every cent to a task / level / resource,
//   * a SpanSink folding the stream into a causal span trace, from which
//     the critical path is extracted and the cost split critical vs. slack
//     (the library behind `mcsim explain`).
//
// By default nothing is written to disk.  Pass --telemetry-dir to persist
// the run the same way `mcsim simulate --telemetry-dir` does — events.jsonl,
// metrics.prom and report.json — plus the span trace as trace.perfetto.json
// (open in ui.perfetto.dev) and trace.mctrace (binary, obs::readMctrace).
//
//   ./examples/telemetry_tour [degrees] [processors] [--telemetry-dir DIR]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "mcsim/mcsim.hpp"

int main(int argc, char** argv) {
  using namespace mcsim;

  // Positional [degrees] [processors] with an optional --telemetry-dir DIR
  // anywhere, mirroring the CLI flag.
  double degrees = 1.0;
  int processors = 8;
  std::string telemetryDir;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--telemetry-dir requires a directory argument\n";
        return 2;
      }
      telemetryDir = argv[++i];
    } else if (positional == 0) {
      degrees = std::atof(arg.c_str());
      ++positional;
    } else {
      processors = std::atoi(arg.c_str());
      ++positional;
    }
  }

  const dag::Workflow wf = montage::buildMontageWorkflow(degrees);

  // One sink fans out to every consumer; the engine sees a single Sink*.
  obs::RingBufferSink recorder(512);
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics(registry);
  obs::ReportBuilder reportBuilder;
  obs::TraceStore store;
  obs::SpanSink spans(store, analysis::traceTopology(wf));
  obs::FanOutSink fan({&recorder, &metrics, &reportBuilder, &spans});

  // --telemetry-dir: persist the stream exactly like the CLI does, through
  // the same TelemetrySession (which creates the directory).
  std::optional<obs::TelemetrySession> session;
  if (!telemetryDir.empty()) {
    session.emplace(obs::TelemetryOptions{telemetryDir});
    fan.add(session->sink());
  }

  engine::EngineConfig cfg;
  cfg.mode = engine::DataMode::DynamicCleanup;
  cfg.processors = processors;
  cfg.observer = &fan;
  cfg.samplePeriodSeconds = 120.0;

  const engine::ExecutionResult result = engine::simulateWorkflow(wf, cfg);

  // 1. The flight recorder: the tail of the event stream, typed.
  std::cout << "flight recorder: " << recorder.size() << " events retained, "
            << recorder.dropped() << " older ones dropped\n";
  std::cout << "  of which " << recorder.countOf<obs::TaskFinished>()
            << " task completions, "
            << recorder.countOf<obs::TransferFinished>()
            << " finished transfers, "
            << recorder.countOf<obs::FileCleanupDeleted>()
            << " cleanup deletions\n\n";

  // 2. The metrics registry, in the text form Prometheus scrapes.
  std::cout << "metrics exposition:\n";
  registry.writePrometheus(std::cout);

  // 3. Cost attribution: who spent the money?
  const obs::RunReport report = reportBuilder.build(
      wf, result, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
      cloud::CpuBillingMode::Usage);

  std::cout << "\ncost by level (usage billing, level 0 = staging):\n";
  Table levels({"level", "tasks", "cpu", "storage", "in", "out", "total"});
  for (const obs::LevelCost& l : report.byLevel) {
    levels.addRow({std::to_string(l.level), std::to_string(l.tasks),
                   analysis::moneyCell(l.cost.cpu),
                   analysis::moneyCell(l.cost.storage),
                   analysis::moneyCell(l.cost.transferIn),
                   analysis::moneyCell(l.cost.transferOut),
                   analysis::moneyCell(l.cost.total())});
  }
  levels.print(std::cout);

  std::vector<obs::TaskCost> ranked = report.byTask;
  std::sort(ranked.begin(), ranked.end(),
            [](const obs::TaskCost& a, const obs::TaskCost& b) {
              return a.cost.total().value() > b.cost.total().value();
            });
  if (ranked.size() > 5) ranked.resize(5);
  std::cout << "\nmost expensive tasks:\n";
  Table top({"task", "type", "level", "total"});
  for (const obs::TaskCost& t : ranked)
    top.addRow({t.name, t.type, std::to_string(t.level),
                analysis::moneyCell(t.cost.total())});
  top.print(std::cout);

  std::cout << "\nreport total " << formatMoney(report.totals.total())
            << " (engine total "
            << formatMoney(engine::computeCost(result,
                                               cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
                                               cloud::CpuBillingMode::Usage)
                               .total())
            << ") -- identical by construction\n";

  // 4. The span trace and the critical path: where the hour actually went.
  // This is the same join `mcsim explain` performs — the trace's critical
  // path against the report's per-task costs.
  std::cout << "\nspan trace: " << store.spanCount() << " spans, "
            << store.edgeCount() << " causal edges across "
            << store.laneCount() << " processor lanes\n\n";
  const analysis::Explanation e = analysis::explainRun(wf, store, report);
  analysis::printExplanation(std::cout, e, 5);

  if (session) {
    const obs::RunReport persisted = session->finish(
        wf, result, cloud::ProviderCatalog::builtin().pricing("amazon-2008"),
        cloud::CpuBillingMode::Usage);
    const std::string perfettoPath = telemetryDir + "/trace.perfetto.json";
    {
      std::ofstream out(perfettoPath);
      if (!out) throw std::runtime_error("cannot write " + perfettoPath);
      const obs::TraceNames names = analysis::traceNames(wf);
      obs::writePerfettoTrace(out, store, &names);
    }
    const std::string mctracePath = telemetryDir + "/trace.mctrace";
    {
      std::ofstream out(mctracePath, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + mctracePath);
      obs::writeMctrace(out, store);
    }
    std::cout << "\ntelemetry written: " << session->eventsPath() << ", "
              << session->metricsPath() << ", " << session->reportPath()
              << " (report total " << formatMoney(persisted.totals.total())
              << "),\n  " << perfettoPath << ", " << mctracePath << "\n";
  }
  return 0;
}
